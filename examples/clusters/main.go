// Clusters: the paper's Figure 5 scenario — physically clustered paths are
// highly correlated, so measuring a handful of representatives pins down the
// rest by conditional-Gaussian prediction (Eqs. 4–5). This example measures
// the selected paths on one chip, predicts the others, and compares the
// predictions against the chip's true (hidden) delays.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"effitest"
)

func main() {
	// Two clusters of critical paths around 6 tuning buffers.
	profile := effitest.NewProfile("fig5", 60, 800, 6, 90)
	c, err := effitest.Generate(profile, 3)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := effitest.New(c, effitest.WithPeriodQuantile(0.8413, 800))
	if err != nil {
		log.Fatal(err)
	}
	plan := eng.Plan()
	fmt.Printf("circuit: %d paths in %d correlation groups; %d will be measured\n\n",
		c.NumPaths(), len(plan.Groups), plan.NumTested())

	for gi, g := range plan.Groups {
		if len(g.Paths) < 2 {
			continue
		}
		fmt.Printf("group %d: %d paths (threshold %.2f), %d principal components, measure %v\n",
			gi, len(g.Paths), g.Threshold, g.NumPCs, g.Selected)
	}

	// Manufacture one chip and run the aligned delay test on the plan's
	// batches (this also demonstrates the per-chip tester budget).
	chip := effitest.SampleChip(c, 77, 0)
	out, err := eng.RunChip(context.Background(), chip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntester spent %d frequency-step iterations for %d measured paths\n",
		out.Iterations, plan.NumTested())

	// Compare predicted windows against the hidden truth for the untested
	// paths.
	tested := map[int]bool{}
	for _, p := range plan.Tested {
		tested[p] = true
	}
	var worst float64
	var inside, total int
	fmt.Println("\nprediction check on untested paths (first 10 shown):")
	shown := 0
	for p := 0; p < c.NumPaths(); p++ {
		if tested[p] {
			continue
		}
		lo, hi := out.Bounds.Lo[p], out.Bounds.Hi[p]
		truth := chip.TrueMax[p]
		mid := (lo + hi) / 2
		errAbs := math.Abs(mid - truth)
		if errAbs > worst {
			worst = errAbs
		}
		total++
		ok := truth >= lo && truth <= hi
		if ok {
			inside++
		}
		if shown < 10 {
			fmt.Printf("  path %3d: predicted [%.4f, %.4f]  true %.4f  |mid-err| %.4f ns  bracketed=%v\n",
				p, lo, hi, truth, errAbs, ok)
			shown++
		}
	}
	fmt.Printf("\n%d/%d untested paths bracketed by their predicted windows; worst midpoint error %.4f ns\n",
		inside, total, worst)
}
