// Holdtime: §3.5 of the paper. Tuning buffers shift clock edges, which can
// break hold-time constraints on short paths. Instead of testing for hold
// violations on the tester, EffiTest derives per-arc lower bounds λij on
// x_i - x_j by Monte-Carlo sampling of the short-path delays, keeping the
// hold yield above a target (Eq. 20) while leaving the buffers as much
// configuration freedom as possible (minimal Σλ).
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"effitest"
)

func main() {
	profile := effitest.NewProfile("hold-demo", 36, 420, 4, 40)
	c, err := effitest.Generate(profile, 21)
	if err != nil {
		log.Fatal(err)
	}

	cfg := effitest.DefaultConfig()
	cfg.HoldSamples = 400

	for _, target := range []float64{1.0, 0.99, 0.95} {
		cfg.HoldYield = target
		hb, err := effitest.ComputeHoldBounds(c, cfg)
		if err != nil {
			log.Fatal(err)
		}
		achieved := effitest.HoldYieldEstimate(c, hb, cfg)
		fmt.Printf("target hold yield %.2f: achieved %.3f, Σλ = %+.4f ns over %d arcs\n",
			target, achieved, hb.SumLambda(), len(hb.ByPair))
	}

	// Show the tightest bounds for the default 0.99 target. The engine
	// computes them as part of its offline plan (New = Prepare + period
	// calibration), so production callers never invoke ComputeHoldBounds
	// directly.
	eng, err := effitest.New(c,
		effitest.WithHoldYield(0.99),
		effitest.WithHoldSamples(400),
		effitest.WithPeriodQuantile(0.8413, 200),
	)
	if err != nil {
		log.Fatal(err)
	}
	hb := eng.Plan().Hold
	type arc struct {
		from, to int
		lambda   float64
	}
	arcs := make([]arc, 0, len(hb.ByPair))
	for pair, l := range hb.ByPair {
		arcs = append(arcs, arc{pair[0], pair[1], l})
	}
	sort.Slice(arcs, func(i, j int) bool { return arcs[i].lambda > arcs[j].lambda })
	fmt.Println("\nfive tightest hold bounds (λij = lower bound on x_i - x_j):")
	for _, a := range arcs[:int(math.Min(5, float64(len(arcs))))] {
		fmt.Printf("  FF%3d -> FF%3d: x_%d - x_%d ≥ %+.4f ns\n", a.from, a.to, a.from, a.to, a.lambda)
	}
	fmt.Println("\nthese constraints enter both the aligned-test ILP (Eqs. 7-14) and the")
	fmt.Println("final configuration model (Eqs. 15-18) as Eq. 21.")
}
