// Streaming-API coverage: Engine.Stream must process unbounded chip
// sources without materializing the population, keep results in input
// order and bit-identical to RunChips, bound its in-flight window, and
// stop cleanly on consumer break and on context cancellation.
package effitest_test

import (
	"context"
	"errors"
	"iter"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"effitest"
)

func streamEngine(t *testing.T, workers int) *effitest.Engine {
	t.Helper()
	c, err := effitest.Generate(effitest.NewProfile("streamed", 16, 120, 2, 14), 8)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := effitest.New(c,
		effitest.WithWorkers(workers),
		effitest.WithPeriodQuantile(0.8413, 200),
	)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// chipGenerator lazily manufactures chips on demand, counting how many
// were ever pulled.
func chipGenerator(eng *effitest.Engine, seed int64, n int, pulled *atomic.Int64) iter.Seq[*effitest.Chip] {
	return func(yield func(*effitest.Chip) bool) {
		for i := 0; i < n; i++ {
			pulled.Add(1)
			if !yield(effitest.SampleChip(eng.Circuit(), seed, i)) {
				return
			}
		}
	}
}

// TestStreamTenThousandChips pushes a 10k-chip generator through Stream
// and checks ordering, completeness, and that the generator was consumed
// incrementally rather than drained up front.
func TestStreamTenThousandChips(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-chip stream skipped in -short mode")
	}
	const n = 10_000
	eng := streamEngine(t, 0)
	var pulled atomic.Int64

	next := 0
	passed := 0
	for r := range eng.Stream(context.Background(), chipGenerator(eng, 5, n, &pulled)) {
		if r.Index != next {
			t.Fatalf("result %d arrived out of order (want %d)", r.Index, next)
		}
		next++
		if r.Err != nil {
			t.Fatalf("chip %d: %v", r.Index, r.Err)
		}
		if r.Outcome.Passed {
			passed++
		}
		// The source must stay only a bounded window ahead of the consumer:
		// that bound is what "never materializes the population" means.
		if ahead := pulled.Load() - int64(next); ahead > int64(4*runtime.NumCPU()+8) {
			t.Fatalf("generator ran %d chips ahead of the consumer", ahead)
		}
	}
	if next != n {
		t.Fatalf("stream yielded %d results, want %d", next, n)
	}
	if passed == 0 {
		t.Fatal("no chip passed — suspicious fixture")
	}
}

// TestStreamMatchesRunChips requires the streaming path to produce
// outcomes bit-identical to the slice path.
func TestStreamMatchesRunChips(t *testing.T) {
	eng := streamEngine(t, 3)
	ctx := context.Background()
	chips, err := eng.SampleChips(ctx, 11, 40)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.RunChipsAll(ctx, chips)
	if err != nil {
		t.Fatal(err)
	}
	var pulled atomic.Int64
	i := 0
	for r := range eng.Stream(ctx, chipGenerator(eng, 11, 40, &pulled)) {
		if r.Err != nil {
			t.Fatalf("chip %d: %v", r.Index, r.Err)
		}
		if !engineOutcomesEqual(r.Outcome, want[r.Index]) {
			t.Fatalf("chip %d: streamed outcome differs from RunChips", r.Index)
		}
		i++
	}
	if i != 40 {
		t.Fatalf("stream yielded %d results, want 40", i)
	}
}

// TestStreamBreakStopsSource breaks out of the stream early and checks
// the source stops being pulled and no goroutines are leaked.
func TestStreamBreakStopsSource(t *testing.T) {
	eng := streamEngine(t, 4)
	before := runtime.NumGoroutine()
	var pulled atomic.Int64

	got := 0
	for r := range eng.Stream(context.Background(), chipGenerator(eng, 3, 1_000_000, &pulled)) {
		if r.Err != nil {
			t.Fatalf("chip %d: %v", r.Index, r.Err)
		}
		if got++; got == 25 {
			break
		}
	}
	if got != 25 {
		t.Fatalf("consumed %d, want 25", got)
	}
	// The stream's in-flight window is a hard bound: at most 3×workers
	// chips are pulled but not yet yielded, plus the one the producer may
	// hold while waiting for a slot.
	if p := pulled.Load(); p > 25+3*4+1 {
		t.Fatalf("source pulled %d chips for 25 consumed (window is 3×workers)", p)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked after break: %d -> %d", before, now)
	}
}

// TestStreamCancellationStopsCleanly cancels mid-stream: the stream must
// end (possibly short) instead of blocking, and the source must stop.
func TestStreamCancellationStopsCleanly(t *testing.T) {
	eng := streamEngine(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var pulled atomic.Int64

	done := make(chan struct{})
	var clean, errored int
	go func() {
		defer close(done)
		for r := range eng.Stream(ctx, chipGenerator(eng, 7, 1_000_000, &pulled)) {
			if r.Err != nil {
				if !errors.Is(r.Err, context.Canceled) {
					panic(r.Err)
				}
				errored++
				continue
			}
			clean++
			if clean == 10 {
				cancel()
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not terminate after cancellation")
	}
	if clean < 10 {
		t.Fatalf("consumed %d clean results before cancel, want ≥ 10", clean)
	}
	// Chips pulled but dropped on cancellation are bounded by the hard
	// in-flight window (3×workers, plus the producer's in-hand chip).
	if p := pulled.Load(); p > int64(clean+errored)+3*4+1 {
		t.Fatalf("source pulled %d chips after cancellation", p)
	}
}

// TestStreamCancelWithBlockedSource cancels a stream whose source is
// parked forever mid-pull: the stream must still terminate after the
// in-flight chips finish, because the producer cannot be interrupted
// inside user code.
func TestStreamCancelWithBlockedSource(t *testing.T) {
	eng := streamEngine(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	release := make(chan struct{})
	defer close(release)
	blocked := func(yield func(*effitest.Chip) bool) {
		for i := 0; i < 4; i++ {
			if !yield(effitest.SampleChip(eng.Circuit(), 5, i)) {
				return
			}
		}
		<-release // source stalls: no further chips, no return
		// Unreachable until teardown.
	}

	done := make(chan int)
	go func() {
		n := 0
		for r := range eng.Stream(ctx, blocked) {
			if r.Err == nil {
				n++
			}
			if n == 2 {
				cancel()
			}
		}
		done <- n
	}()
	select {
	case n := <-done:
		if n < 2 {
			t.Fatalf("consumed %d clean results, want ≥ 2", n)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream hung on cancellation with a blocked source")
	}
}
