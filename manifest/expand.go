package manifest

import (
	"fmt"
	"strconv"
	"strings"

	"effitest/fleet/httpapi"
	"effitest/workload"
)

// Expand renders the manifest into its ordered list of concrete campaigns.
// The expansion is a pure function of the spec: fixed nested-loop order
// (circuits × align × eps × seeds × workloads × drift points), campaign
// names rendered with deterministic float formatting, no clocks or
// randomness — so the same manifest always yields the byte-identical list,
// which the suite-report goldens and the fleet idempotency keys rely on.
func Expand(s *SuiteSpec) ([]Campaign, error) {
	if err := Validate(s); err != nil {
		return nil, err
	}
	aligns := s.Sweep.Align
	if len(aligns) == 0 {
		aligns = []string{"heuristic"}
	}
	epss := s.Sweep.Eps
	if len(epss) == 0 {
		epss = []float64{0}
	}
	seeds := s.Sweep.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}

	var out []Campaign
	for _, ce := range s.Circuits {
		for _, align := range aligns {
			for _, eps := range epss {
				for _, seed := range seeds {
					for _, w := range s.Workloads {
						canon := workload.Canonical(w.Type)
						drifts := []float64{0}
						if canon == workload.TypeAgingDrift {
							drifts = w.Drifts
						}
						for _, d := range drifts {
							out = append(out, s.render(ce, align, eps, seed, canon, w.BinEdges, d))
						}
					}
				}
			}
		}
	}
	if len(out) > MaxCampaigns {
		// Unreachable after Validate, but Expand guards its own output.
		return nil, &Error{Msg: fmt.Sprintf("manifest expands to %d campaigns, limit %d", len(out), MaxCampaigns)}
	}
	return out, nil
}

// render builds one concrete campaign at a point of the sweep lattice.
func (s *SuiteSpec) render(ce CircuitEntry, align string, eps float64, seed int64, canon string, edges []float64, drift float64) Campaign {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s/%s/align=%s,eps=%s,seed=%d",
		s.Name, ce.label(), canon, strings.ToLower(align), ftoa(eps), seed)
	if canon == workload.TypeAgingDrift {
		fmt.Fprintf(&b, ",drift=%s", ftoa(drift))
	}
	req := httpapi.CampaignRequest{
		Name: b.String(),
		Circuit: httpapi.CircuitSpec{
			Profile: ce.Profile,
			Custom:  ce.Custom,
			Netlist: ce.Netlist,
			GenSeed: ce.GenSeed,
		},
		Config: httpapi.ConfigSpec{
			Align:      strings.ToLower(align),
			Eps:        eps,
			Seed:       seed,
			MaxBatch:   s.Sweep.MaxBatch,
			Period:     s.Sweep.Period,
			Quantile:   s.Sweep.Quantile,
			CalibChips: s.Sweep.CalibChips,
		},
		Chips: httpapi.ChipSpec{
			Seed:  s.Chips.Seed,
			Count: s.Chips.Count,
		},
		Workload: canon,
	}
	if canon == workload.TypeClockBinning {
		req.BinEdges = append([]float64(nil), edges...)
	}
	if canon == workload.TypeAgingDrift {
		req.Drift = drift
	}
	return Campaign{Request: req, Backend: strings.ToLower(s.Backend)}
}

// ftoa renders a float the shortest way that round-trips, the same
// formatting encoding/json uses — campaign names stay stable across runs
// and Go versions.
func ftoa(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
