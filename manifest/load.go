package manifest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// Error is one manifest problem, addressed by the JSON field path it was
// found at (e.g. "circuits[0].profile"). An empty path means the document
// as a whole.
type Error struct {
	Path string
	Msg  string
}

// Error renders "path: msg".
func (e *Error) Error() string {
	if e.Path == "" {
		return e.Msg
	}
	return e.Path + ": " + e.Msg
}

// ValidationError collects every problem Validate found, so a CLI shows
// the operator the whole list instead of the first.
type ValidationError struct {
	Errs []*Error
}

// Error joins the findings, one per line.
func (v *ValidationError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invalid manifest (%d problem(s)):", len(v.Errs))
	for _, e := range v.Errs {
		b.WriteString("\n  ")
		b.WriteString(e.Error())
	}
	return b.String()
}

// Load reads, decodes and validates a manifest file.
func Load(path string) (*SuiteSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Decode parses manifest bytes strictly — unknown fields and trailing
// garbage are errors, not silent drops, so a typo'd axis name cannot
// quietly run a different suite than the operator wrote — then validates
// the result. Errors are typed (*Error / *ValidationError) and Decode
// never panics on any input.
func Decode(data []byte) (*SuiteSpec, error) {
	var s SuiteSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, &Error{Msg: decodeMsg(err)}
	}
	// A manifest is one JSON document; trailing non-space bytes mean the
	// file is not what it appears to be.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, &Error{Msg: "trailing data after manifest document"}
	}
	if err := Validate(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// decodeMsg maps encoding/json errors onto field-path messages where the
// error carries one.
func decodeMsg(err error) string {
	var ute *json.UnmarshalTypeError
	if errors.As(err, &ute) && ute.Field != "" {
		return fmt.Sprintf("%s: cannot decode %s into %s", ute.Field, ute.Value, ute.Type)
	}
	return err.Error()
}
