// Package manifest is the declarative scenario layer of the fleet: a
// versioned JSON format describing a *suite* — circuit sets × config sweeps
// (ε, alignment mode, period policy, seeds) × backend selection × workload
// type — and a loader → validator → expander pipeline that renders it into
// a deterministic, ordered list of concrete campaign requests.
//
// The same expansion drives all three execution targets (in-process, one
// effitestd, a fleet/coord shard fan-out), which is what makes suite
// reports golden-diffable: the expanded list is a pure function of the
// manifest bytes, campaign names are rendered deterministically, and every
// number a campaign reports is already bit-identical across targets by the
// fleet layer's own guarantees.
//
// Malformed manifests never panic: Decode rejects unknown fields and
// trailing garbage, and Validate returns typed, field-path-addressed
// errors ("circuits[0].profile: unknown profile ...") suitable for CLI
// display. FuzzManifestDecode pins this.
package manifest

import (
	"fmt"
	"strings"

	"effitest/fleet/httpapi"
)

// FormatVersion is the manifest format this package reads and writes.
// Manifests must state their format explicitly so a future incompatible
// revision can be detected instead of misread.
const FormatVersion = 1

// MaxCampaigns bounds one manifest's expansion. The axes multiply, and an
// expansion too large to enumerate is almost certainly a manifest bug —
// better a typed error than an OOM.
const MaxCampaigns = 4096

// SuiteSpec is the root of a suite manifest.
type SuiteSpec struct {
	// Format must equal FormatVersion.
	Format int `json:"format"`
	// Name labels the suite; it prefixes every expanded campaign name and
	// heads the suite report.
	Name string `json:"name"`
	// Circuits lists the circuits under test; the sweep and workload axes
	// apply to each.
	Circuits []CircuitEntry `json:"circuits"`
	// Sweep spans the flow-configuration axes. Omitted axes collapse to
	// one paper-default point.
	Sweep Sweep `json:"sweep"`
	// Workloads lists the campaign types to run per configuration point.
	Workloads []WorkloadEntry `json:"workloads"`
	// Chips picks the deterministic chip population shared by every
	// campaign in the suite.
	Chips ChipsEntry `json:"chips"`
	// Backend selects the measurement transport: "sim" (default), "fault"
	// (the fault-injection wrapper in instrumentation mode) or "replay"
	// (record once, then replay the trace). Non-sim backends exist only
	// in-process, so they require local execution.
	Backend string `json:"backend,omitempty"`
	// Execution declares the suite's default execution target; the suite
	// CLI's flags override it.
	Execution Execution `json:"execution"`
}

// CircuitEntry names one circuit the same three ways the fleet wire format
// does: a Table-1 benchmark profile, a custom synthetic profile, or an
// inline netlist. Exactly one must be set.
type CircuitEntry struct {
	Profile string                 `json:"profile,omitempty"`
	Custom  *httpapi.CustomProfile `json:"custom,omitempty"`
	Netlist string                 `json:"netlist,omitempty"`
	// GenSeed seeds the benchmark generator (profile and custom forms).
	GenSeed int64 `json:"gen_seed,omitempty"`
}

// label renders the circuit's segment of a campaign name.
func (ce CircuitEntry) label() string {
	base := "netlist"
	switch {
	case ce.Profile != "":
		base = ce.Profile
	case ce.Custom != nil:
		base = ce.Custom.Name
	}
	if ce.GenSeed != 0 {
		return fmt.Sprintf("%s@g%d", base, ce.GenSeed)
	}
	return base
}

// Sweep spans the flow-configuration axes of a suite. The list axes cross-
// multiply; the scalar fields apply to every point. Empty lists default to
// a single paper-default point (align "heuristic", ε 0 meaning the paper
// default, seed 1).
type Sweep struct {
	// Align lists §3.3 alignment modes: heuristic | fast-milp | paper-ilp
	// | off.
	Align []string `json:"align,omitempty"`
	// Eps lists delay-range termination thresholds in ns (0 = paper
	// default).
	Eps []float64 `json:"eps,omitempty"`
	// Seeds lists master random seeds.
	Seeds []int64 `json:"seeds,omitempty"`
	// Period pins the test period Td in ns; when 0 the period is
	// calibrated as the Quantile-quantile over CalibChips chips
	// (defaults: the paper's 0.8413 over 2000).
	Period     float64 `json:"period,omitempty"`
	Quantile   float64 `json:"quantile,omitempty"`
	CalibChips int     `json:"calib_chips,omitempty"`
	// MaxBatch caps test batch sizes (0 = unlimited).
	MaxBatch int `json:"max_batch,omitempty"`
}

// WorkloadEntry selects one workload type and its parameters.
type WorkloadEntry struct {
	// Type is a workload type name (package workload): effitest |
	// clock-binning | aging-drift.
	Type string `json:"type"`
	// BinEdges are the ascending period bin edges of a clock-binning
	// workload, in ns.
	BinEdges []float64 `json:"bin_edges,omitempty"`
	// Drifts are the sweep points of an aging-drift workload; each value d
	// scales every chip's realized delays by (1+d) and runs one campaign.
	Drifts []float64 `json:"drifts,omitempty"`
}

// ChipsEntry picks the deterministic chip population.
type ChipsEntry struct {
	Seed  int64 `json:"seed"`
	Count int   `json:"count"`
}

// Execution declares where a suite runs by default. The suite CLI's
// -daemon / -nodes / -local flags take precedence.
type Execution struct {
	// Target is local | daemon | coord ("" = local).
	Target string `json:"target,omitempty"`
	// Daemon is the effitestd base URL for the daemon target.
	Daemon string `json:"daemon,omitempty"`
	// Nodes are the effitestd base URLs for the coord target.
	Nodes []string `json:"nodes,omitempty"`
	// Workers sizes the local worker pool (0 = all CPUs). Remote targets
	// use the daemons' own pools.
	Workers int `json:"workers,omitempty"`
}

// Campaign is one expanded, concrete campaign: a ready-to-submit fleet
// request plus the backend it must run on. Requests carry the workload
// type, bin edges and drift on the wire, so the same expansion serves the
// in-process runner, a single daemon and the shard coordinator.
type Campaign struct {
	Request httpapi.CampaignRequest `json:"request"`
	// Backend is the manifest's transport selection: "sim" | "fault" |
	// "replay" (empty = sim). Non-sim backends require local execution.
	Backend string `json:"backend,omitempty"`
}

// Backends lists the valid backend selections.
func Backends() []string { return []string{"sim", "fault", "replay"} }

// validBackend reports whether name selects a known transport.
func validBackend(name string) bool {
	switch strings.ToLower(name) {
	case "", "sim", "fault", "replay":
		return true
	}
	return false
}
