package manifest

import (
	"fmt"
	"math"
	"strings"

	"effitest"
	"effitest/workload"
)

// Validate checks a decoded manifest semantically and returns a
// *ValidationError listing every problem with its field path, or nil. It
// never panics, whatever the spec contains — the FuzzManifestDecode fuzz
// target holds it to that.
func Validate(s *SuiteSpec) error {
	v := &validator{}
	if s == nil {
		v.addf("", "manifest is empty")
		return v.err()
	}
	if s.Format != FormatVersion {
		v.addf("format", "unsupported manifest format %d (this build reads %d)", s.Format, FormatVersion)
	}
	if s.Name == "" {
		v.addf("name", "suite name is required")
	} else if strings.ContainsAny(s.Name, "/\n") {
		v.addf("name", "suite name must not contain '/' or newlines")
	}

	if len(s.Circuits) == 0 {
		v.addf("circuits", "at least one circuit is required")
	}
	for i, ce := range s.Circuits {
		v.circuit(fmt.Sprintf("circuits[%d]", i), ce)
	}

	v.sweep(&s.Sweep)

	if len(s.Workloads) == 0 {
		v.addf("workloads", "at least one workload is required (have %v)", workload.Types())
	}
	seen := map[string]bool{}
	for i, w := range s.Workloads {
		path := fmt.Sprintf("workloads[%d]", i)
		if !workload.Valid(w.Type) {
			v.addf(path+".type", "unknown workload %q (have %v)", w.Type, workload.Types())
			continue
		}
		canon := workload.Canonical(w.Type)
		if seen[canon] {
			v.addf(path+".type", "workload %q listed twice", canon)
		}
		seen[canon] = true
		switch canon {
		case workload.TypeClockBinning:
			if err := workload.ValidateEdges(w.BinEdges); err != nil {
				v.addf(path+".bin_edges", "%v", err)
			}
			if len(w.Drifts) > 0 {
				v.addf(path+".drifts", "drifts are only valid for the %s workload", workload.TypeAgingDrift)
			}
		case workload.TypeAgingDrift:
			if len(w.Drifts) == 0 {
				v.addf(path+".drifts", "aging drift needs at least one sweep point")
			}
			for j, d := range w.Drifts {
				if err := workload.ValidateDrift(d); err != nil {
					v.addf(fmt.Sprintf("%s.drifts[%d]", path, j), "%v", err)
				}
			}
			if len(w.BinEdges) > 0 {
				v.addf(path+".bin_edges", "bin edges are only valid for the %s workload", workload.TypeClockBinning)
			}
		default:
			if len(w.BinEdges) > 0 {
				v.addf(path+".bin_edges", "bin edges are only valid for the %s workload", workload.TypeClockBinning)
			}
			if len(w.Drifts) > 0 {
				v.addf(path+".drifts", "drifts are only valid for the %s workload", workload.TypeAgingDrift)
			}
		}
	}

	if s.Chips.Count <= 0 {
		v.addf("chips.count", "chip count must be positive, got %d", s.Chips.Count)
	}

	if !validBackend(s.Backend) {
		v.addf("backend", "unknown backend %q (have %v)", s.Backend, Backends())
	}

	switch s.Execution.Target {
	case "", "local":
		// Non-sim backends are in-process constructs; fine here.
	case "daemon", "coord":
		if b := strings.ToLower(s.Backend); b != "" && b != "sim" {
			v.addf("backend", "backend %q requires local execution, not target %q", s.Backend, s.Execution.Target)
		}
	default:
		v.addf("execution.target", "unknown target %q (have local, daemon, coord)", s.Execution.Target)
	}
	if s.Execution.Workers < 0 {
		v.addf("execution.workers", "workers must be >= 0, got %d", s.Execution.Workers)
	}

	// The expansion size is part of validity: a manifest that multiplies
	// out to millions of campaigns is a bug, and catching it here keeps
	// Expand allocation-safe on hostile input.
	if n, ok := v.expansionSize(s); ok && n > MaxCampaigns {
		v.addf("", "manifest expands to %d campaigns, limit %d", n, MaxCampaigns)
	}
	return v.err()
}

type validator struct {
	errs []*Error
}

func (v *validator) addf(path, format string, args ...any) {
	v.errs = append(v.errs, &Error{Path: path, Msg: fmt.Sprintf(format, args...)})
}

func (v *validator) err() error {
	if len(v.errs) == 0 {
		return nil
	}
	return &ValidationError{Errs: v.errs}
}

func (v *validator) circuit(path string, ce CircuitEntry) {
	set := 0
	for _, ok := range []bool{ce.Profile != "", ce.Custom != nil, ce.Netlist != ""} {
		if ok {
			set++
		}
	}
	if set != 1 {
		v.addf(path, "exactly one of profile, custom or netlist must be set")
		return
	}
	switch {
	case ce.Profile != "":
		if _, ok := effitest.ProfileByName(ce.Profile); !ok {
			v.addf(path+".profile", "unknown profile %q", ce.Profile)
		}
	case ce.Custom != nil:
		c := ce.Custom
		if c.Name == "" {
			v.addf(path+".custom.name", "custom profile name is required")
		}
		if c.FFs <= 0 || c.Gates <= 0 || c.Buffers <= 0 || c.Paths <= 0 {
			v.addf(path+".custom", "ffs, gates, buffers and paths must all be positive")
		}
	}
}

func (v *validator) sweep(sw *Sweep) {
	for i, a := range sw.Align {
		switch strings.ToLower(a) {
		case "heuristic", "fast-milp", "paper-ilp", "off":
		default:
			v.addf(fmt.Sprintf("sweep.align[%d]", i), "unknown align mode %q", a)
		}
	}
	for i, e := range sw.Eps {
		if math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
			v.addf(fmt.Sprintf("sweep.eps[%d]", i), "eps must be a finite value >= 0, got %v", e)
		}
	}
	if bad(sw.Period) || sw.Period < 0 {
		v.addf("sweep.period", "period must be a finite value >= 0, got %v", sw.Period)
	}
	if bad(sw.Quantile) || sw.Quantile < 0 || sw.Quantile >= 1 {
		v.addf("sweep.quantile", "quantile must be in [0, 1), got %v", sw.Quantile)
	}
	if sw.CalibChips < 0 {
		v.addf("sweep.calib_chips", "calib_chips must be >= 0, got %d", sw.CalibChips)
	}
	if sw.MaxBatch < 0 {
		v.addf("sweep.max_batch", "max_batch must be >= 0, got %d", sw.MaxBatch)
	}
}

func bad(f float64) bool { return math.IsNaN(f) || math.IsInf(f, 0) }

// expansionSize computes how many campaigns the manifest expands to,
// mirroring Expand's loop structure, with overflow saturation. ok is false
// when earlier errors make the count meaningless.
func (v *validator) expansionSize(s *SuiteSpec) (int, bool) {
	if len(v.errs) > 0 {
		return 0, false
	}
	points := 0
	for _, w := range s.Workloads {
		if workload.Canonical(w.Type) == workload.TypeAgingDrift {
			points += len(w.Drifts)
		} else {
			points++
		}
	}
	n := len(s.Circuits)
	for _, f := range []int{max(len(s.Sweep.Align), 1), max(len(s.Sweep.Eps), 1), max(len(s.Sweep.Seeds), 1), points} {
		n *= f
		// n enters each multiply <= MaxCampaigns and every factor is
		// bounded by the manifest's byte length, so this cannot overflow.
		if n > MaxCampaigns {
			return MaxCampaigns + 1, true
		}
	}
	return n, true
}
