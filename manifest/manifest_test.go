package manifest

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// goodManifest is a three-workload suite touching every axis once.
const goodManifest = `{
	"format": 1,
	"name": "smoke",
	"circuits": [
		{"custom": {"name": "t16", "ffs": 16, "gates": 120, "buffers": 4, "paths": 24}, "gen_seed": 7},
		{"profile": "s9234"}
	],
	"sweep": {
		"align": ["heuristic"],
		"eps": [0.002],
		"seeds": [1, 2],
		"quantile": 0.8413,
		"calib_chips": 200
	},
	"workloads": [
		{"type": "effitest"},
		{"type": "clock-binning", "bin_edges": [1.0, 1.15, 1.3]},
		{"type": "aging-drift", "drifts": [0, 0.05, 0.1]}
	],
	"chips": {"seed": 11, "count": 24},
	"execution": {"target": "local", "workers": 2}
}`

func TestDecodeGood(t *testing.T) {
	s, err := Decode([]byte(goodManifest))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if s.Name != "smoke" || len(s.Circuits) != 2 || len(s.Workloads) != 3 {
		t.Fatalf("decoded wrong shape: %+v", s)
	}
	camps, err := Expand(s)
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	// 2 circuits x 1 align x 1 eps x 2 seeds x (1 + 1 + 3 drift points).
	if len(camps) != 2*2*5 {
		t.Fatalf("expanded %d campaigns, want %d", len(camps), 2*2*5)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := []struct {
		name, doc, wantSub string
	}{
		{"unknown field", `{"format": 1, "nam": "x"}`, "nam"},
		{"trailing data", goodManifest + `{"again": true}`, "trailing data"},
		{"wrong type", `{"format": 1, "name": "x", "chips": {"seed": "eleven"}}`, "chips.seed"},
		{"not json", `format: 1`, "invalid character"},
		{"empty", ``, "EOF"},
	}
	for _, c := range cases {
		_, err := Decode([]byte(c.doc))
		if err == nil {
			t.Errorf("%s: decoded without error", c.name)
			continue
		}
		var me *Error
		var ve *ValidationError
		if !errors.As(err, &me) && !errors.As(err, &ve) {
			t.Errorf("%s: error is not typed: %T", c.name, err)
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

// mutate decodes the good manifest loosely, applies f, and validates.
func mutate(t *testing.T, f func(*SuiteSpec)) error {
	t.Helper()
	var s SuiteSpec
	if err := json.Unmarshal([]byte(goodManifest), &s); err != nil {
		t.Fatal(err)
	}
	f(&s)
	return Validate(&s)
}

func TestValidateFieldPaths(t *testing.T) {
	cases := []struct {
		name    string
		f       func(*SuiteSpec)
		wantSub string
	}{
		{"bad format", func(s *SuiteSpec) { s.Format = 2 }, "format:"},
		{"no name", func(s *SuiteSpec) { s.Name = "" }, "name:"},
		{"slash name", func(s *SuiteSpec) { s.Name = "a/b" }, "name:"},
		{"no circuits", func(s *SuiteSpec) { s.Circuits = nil }, "circuits:"},
		{"ambiguous circuit", func(s *SuiteSpec) { s.Circuits[1].Netlist = "x" }, "circuits[1]:"},
		{"unknown profile", func(s *SuiteSpec) { s.Circuits[1].Profile = "s000" }, "circuits[1].profile:"},
		{"bad custom", func(s *SuiteSpec) { s.Circuits[0].Custom.FFs = 0 }, "circuits[0].custom:"},
		{"bad align", func(s *SuiteSpec) { s.Sweep.Align = []string{"exact"} }, "sweep.align[0]:"},
		{"negative eps", func(s *SuiteSpec) { s.Sweep.Eps = []float64{-1} }, "sweep.eps[0]:"},
		{"bad quantile", func(s *SuiteSpec) { s.Sweep.Quantile = 1 }, "sweep.quantile:"},
		{"no workloads", func(s *SuiteSpec) { s.Workloads = nil }, "workloads:"},
		{"unknown workload", func(s *SuiteSpec) { s.Workloads[0].Type = "burnin" }, "workloads[0].type:"},
		{"dup workload", func(s *SuiteSpec) { s.Workloads[0].Type = "clock-binning"; s.Workloads[0].BinEdges = []float64{1} }, "workloads[1].type:"},
		{"binning no edges", func(s *SuiteSpec) { s.Workloads[1].BinEdges = nil }, "workloads[1].bin_edges:"},
		{"unsorted edges", func(s *SuiteSpec) { s.Workloads[1].BinEdges = []float64{2, 1} }, "workloads[1].bin_edges:"},
		{"drift on binning", func(s *SuiteSpec) { s.Workloads[1].Drifts = []float64{0.1} }, "workloads[1].drifts:"},
		{"edges on effitest", func(s *SuiteSpec) { s.Workloads[0].BinEdges = []float64{1} }, "workloads[0].bin_edges:"},
		{"aging no drifts", func(s *SuiteSpec) { s.Workloads[2].Drifts = nil }, "workloads[2].drifts:"},
		{"drift out of range", func(s *SuiteSpec) { s.Workloads[2].Drifts = []float64{2.5} }, "workloads[2].drifts[0]:"},
		{"no chips", func(s *SuiteSpec) { s.Chips.Count = 0 }, "chips.count:"},
		{"bad backend", func(s *SuiteSpec) { s.Backend = "hw" }, "backend:"},
		{"remote fault backend", func(s *SuiteSpec) { s.Backend = "fault"; s.Execution.Target = "daemon" }, "backend:"},
		{"bad target", func(s *SuiteSpec) { s.Execution.Target = "cloud" }, "execution.target:"},
		{"negative workers", func(s *SuiteSpec) { s.Execution.Workers = -1 }, "execution.workers:"},
		{"expansion too large", func(s *SuiteSpec) {
			s.Sweep.Seeds = make([]int64, 100)
			s.Sweep.Eps = make([]float64, 100)
		}, "limit 4096"},
	}
	for _, c := range cases {
		err := mutate(t, c.f)
		if err == nil {
			t.Errorf("%s: validated clean", c.name)
			continue
		}
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Errorf("%s: error is %T, want *ValidationError", c.name, err)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
	// All problems are reported at once, not just the first.
	err := mutate(t, func(s *SuiteSpec) { s.Name = ""; s.Chips.Count = -1 })
	var ve *ValidationError
	if !errors.As(err, &ve) || len(ve.Errs) != 2 {
		t.Fatalf("multi-error validation: %v", err)
	}
}

func TestValidateNil(t *testing.T) {
	if err := Validate(nil); err == nil {
		t.Fatal("nil spec validated clean")
	}
}

func TestExpandDeterministic(t *testing.T) {
	s1, err := Decode([]byte(goodManifest))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Decode([]byte(goodManifest))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := Expand(s1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Expand(s2)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(c1)
	j2, _ := json.Marshal(c2)
	if string(j1) != string(j2) {
		t.Fatal("expansion is not byte-identical across runs")
	}

	// Names are fully determined and unique; spot-check the lattice order.
	seen := map[string]bool{}
	for _, c := range c1 {
		if seen[c.Request.Name] {
			t.Fatalf("duplicate campaign name %q", c.Request.Name)
		}
		seen[c.Request.Name] = true
	}
	if got, want := c1[0].Request.Name, "smoke/t16@g7/effitest/align=heuristic,eps=0.002,seed=1"; got != want {
		t.Fatalf("first campaign name %q, want %q", got, want)
	}
	last := c1[len(c1)-1]
	if got, want := last.Request.Name, "smoke/s9234/aging-drift/align=heuristic,eps=0.002,seed=2,drift=0.1"; got != want {
		t.Fatalf("last campaign name %q, want %q", got, want)
	}
	if last.Request.Drift != 0.1 || last.Request.Workload != "aging-drift" {
		t.Fatalf("last campaign request: %+v", last.Request)
	}
}

func TestExpandDefaults(t *testing.T) {
	doc := `{
		"format": 1, "name": "min",
		"circuits": [{"profile": "s9234"}],
		"workloads": [{"type": "effitest"}],
		"chips": {"seed": 1, "count": 4}
	}`
	s, err := Decode([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	camps, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(camps) != 1 {
		t.Fatalf("expanded %d campaigns, want 1", len(camps))
	}
	req := camps[0].Request
	if req.Name != "min/s9234/effitest/align=heuristic,eps=0,seed=1" {
		t.Fatalf("defaulted name: %q", req.Name)
	}
	if req.Config.Align != "heuristic" || req.Config.Seed != 1 {
		t.Fatalf("defaulted config: %+v", req.Config)
	}
	if camps[0].Backend != "" && camps[0].Backend != "sim" {
		t.Fatalf("defaulted backend: %q", camps[0].Backend)
	}
}

// FuzzManifestDecode holds the whole pipeline — strict decode, validation,
// expansion — to "typed errors, never panics" on arbitrary bytes.
func FuzzManifestDecode(f *testing.F) {
	f.Add([]byte(goodManifest))
	f.Add([]byte(`{"format": 1}`))
	f.Add([]byte(`{"format": 1, "name": "x", "circuits": [{}], "workloads": [{"type": ""}], "chips": {"count": 1}}`))
	f.Add([]byte(`{"format": 1, "name": "x", "circuits": [{"profile": "s9234"}], "workloads": [{"type": "clock-binning", "bin_edges": [1e308, 1e309]}], "chips": {"count": 1}}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			var me *Error
			var ve *ValidationError
			if !errors.As(err, &me) && !errors.As(err, &ve) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			if err.Error() == "" {
				t.Fatal("empty error message")
			}
			return
		}
		// A manifest that decodes cleanly must expand cleanly: Decode ran
		// Validate, and Expand's own guard is unreachable after it.
		camps, err := Expand(s)
		if err != nil {
			t.Fatalf("valid manifest failed to expand: %v", err)
		}
		if len(camps) == 0 || len(camps) > MaxCampaigns {
			t.Fatalf("expansion size %d out of bounds", len(camps))
		}
	})
}
