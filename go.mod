module effitest

go 1.24
