package effitest_test

import (
	"fmt"

	"effitest"
)

// ExampleMinPeriodUnconstrained reproduces the paper's Figure 2: four
// flip-flops in a loop whose minimum clock period drops from 8 (slowest
// stage) to 5.5 (cycle mean) with post-silicon clock tuning.
func ExampleMinPeriodUnconstrained() {
	arcs := []effitest.Timing{
		{From: 0, To: 1, Setup: 3, Hold: -3},
		{From: 1, To: 2, Setup: 8, Hold: -8},
		{From: 2, To: 3, Setup: 5, Hold: -5},
		{From: 3, To: 0, Setup: 6, Hold: -6},
	}
	min, _ := effitest.MinPeriodUnconstrained(4, arcs)
	fmt.Printf("minimum period with tuning: %.1f\n", min)
	// Output: minimum period with tuning: 5.5
}

// ExampleGenerate shows deterministic benchmark generation: the published
// Table 1 statistics are reproduced exactly.
func ExampleGenerate() {
	profile, _ := effitest.ProfileByName("s9234")
	c, err := effitest.Generate(profile, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d FFs, %d gates, %d buffers, %d paths\n",
		c.Name, c.NumFF, c.NumGates(), c.NumBuffers(), c.NumPaths())
	// Output: s9234: 211 FFs, 5597 gates, 2 buffers, 80 paths
}

// ExamplePrepare runs the offline flow and reports how few paths need real
// tester measurements.
func ExamplePrepare() {
	c, err := effitest.Generate(effitest.NewProfile("doc", 24, 200, 3, 30), 1)
	if err != nil {
		panic(err)
	}
	plan, err := effitest.Prepare(c, effitest.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("measure %d of %d paths\n", plan.NumTested(), c.NumPaths())
	// Output: measure 6 of 30 paths
}

// ExampleFeasibleSkewsDiscrete checks a clock period against the discrete
// buffer lattice exactly.
func ExampleFeasibleSkewsDiscrete() {
	arcs := []effitest.Timing{{From: 0, To: 1, Setup: 6, Hold: -6}}
	b := effitest.UniformBuffers(2, []int{1}, -1, 1, 20)
	if x, ok := effitest.FeasibleSkewsDiscrete(5.5, arcs, b); ok {
		fmt.Printf("feasible with x1 = %.1f\n", x[1])
	}
	// Output: feasible with x1 = 0.5
}
