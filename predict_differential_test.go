// Differential suite for the prediction kernels: the plan-time prefactored
// fast path (kernels baked at Prepare/Bind, applied per chip without
// allocation) must be bit-for-bit identical to the naive per-chip
// groupMVN+Conditional path across the conformance scenario matrix. Any
// single-ULP drift here would silently invalidate the golden corpus.
package effitest_test

import (
	"context"
	"math"
	"testing"

	"effitest/internal/conformance"
	"effitest/internal/core"
)

// differentialScenarios picks the pipeline cells of the conformance matrix:
// every tiny64 cell always, and under full (non-short) runs one heavy cell
// per Table-1 circuit so the big-group kernels are exercised too.
func differentialScenarios(t *testing.T) []conformance.Scenario {
	t.Helper()
	var out []conformance.Scenario
	for _, sc := range conformance.DefaultMatrix() {
		if sc.Kind != conformance.KindPipeline {
			continue
		}
		if sc.Heavy {
			if testing.Short() {
				continue
			}
			// One cell per heavy circuit keeps the full suite's runtime
			// bounded; the remaining axes are covered by tiny64.
			if sc.Align != core.AlignHeuristic || sc.Eps != 0.002 || sc.Seed != 1 {
				continue
			}
		}
		out = append(out, sc)
	}
	return out
}

// TestPredictKernelsMatchNaive runs every differential scenario's chip fleet
// twice — once through the baked kernels, once through the naive
// groupMVN+Conditional path — and requires bitwise-equal outcomes: bounds,
// buffer values, ξ, iteration counts and pass/fail.
func TestPredictKernelsMatchNaive(t *testing.T) {
	ctx := context.Background()
	for _, sc := range differentialScenarios(t) {
		t.Run(sc.Name(), func(t *testing.T) {
			res, err := conformance.RunPipeline(ctx, sc)
			if err != nil {
				t.Fatal(err)
			}
			naive := res.Engine.Plan().WithoutPredictorKernels()
			td := res.Engine.Period()
			for i, ch := range res.Chips {
				want := res.Outs[i] // kernel-path outcome
				got, err := naive.RunChipCtx(ctx, ch, td)
				if err != nil {
					t.Fatalf("chip %d naive run: %v", i, err)
				}
				if got.Iterations != want.Iterations || got.ScanBits != want.ScanBits {
					t.Fatalf("chip %d: iterations/scan diverge: naive (%d, %d) vs kernel (%d, %d)",
						i, got.Iterations, got.ScanBits, want.Iterations, want.ScanBits)
				}
				if got.Configured != want.Configured || got.Passed != want.Passed || got.Xi != want.Xi {
					t.Fatalf("chip %d: configuration diverges: naive (%v, %v, %v) vs kernel (%v, %v, %v)",
						i, got.Configured, got.Passed, got.Xi, want.Configured, want.Passed, want.Xi)
				}
				for p := range got.Bounds.Lo {
					if got.Bounds.Lo[p] != want.Bounds.Lo[p] || got.Bounds.Hi[p] != want.Bounds.Hi[p] {
						t.Fatalf("chip %d path %d: bounds diverge: naive [%v, %v] vs kernel [%v, %v]",
							i, p, got.Bounds.Lo[p], got.Bounds.Hi[p], want.Bounds.Lo[p], want.Bounds.Hi[p])
					}
				}
				for f := range got.X {
					if got.X[f] != want.X[f] {
						t.Fatalf("chip %d buffer %d: %v (naive) != %v (kernel)", i, f, got.X[f], want.X[f])
					}
				}
			}
		})
	}
}

// TestPredictorSigmasMatchNaive pins the baked conditional sigmas bitwise
// against the naive PredictSigmas evaluated at the plan's tested set.
func TestPredictorSigmasMatchNaive(t *testing.T) {
	ctx := context.Background()
	for _, sc := range differentialScenarios(t) {
		t.Run(sc.Name(), func(t *testing.T) {
			res, err := conformance.RunPipeline(ctx, sc)
			if err != nil {
				t.Fatal(err)
			}
			plan := res.Engine.Plan()
			baked := plan.PredictorSigmas()
			if baked == nil {
				t.Fatal("prepared plan has no baked kernels")
			}
			naive, err := core.PredictSigmas(res.Circuit, plan.Groups, plan.Tested)
			if err != nil {
				t.Fatal(err)
			}
			if len(baked) != len(naive) {
				t.Fatalf("length mismatch: %d vs %d", len(baked), len(naive))
			}
			for p := range baked {
				if math.IsNaN(baked[p]) != math.IsNaN(naive[p]) {
					t.Fatalf("path %d: NaN disagreement: baked %v, naive %v", p, baked[p], naive[p])
				}
				if !math.IsNaN(baked[p]) && baked[p] != naive[p] {
					t.Fatalf("path %d: σ′ diverges: baked %v, naive %v", p, baked[p], naive[p])
				}
			}
		})
	}
}
