#!/usr/bin/env sh
# Run the benchmark suite and record machine-readable results, so the perf
# trajectory is tracked PR over PR (BENCH_<pr>.json at the repo root).
#
# Usage (from the repository root):
#   scripts/bench.sh                    # fast subset, 1 op each -> BENCH_8.json
#   BENCH_OUT=BENCH_9.json scripts/bench.sh
#   BENCH_SHORT=1 scripts/bench.sh      # FlowChip* only (CI bench-regression smoke)
#   BENCH_PATTERN='Benchmark' BENCH_TIME=2s scripts/bench.sh   # everything, timed
set -eu

# BenchmarkPrepare also matches BenchmarkPrepareWarmCache: cold Prepare and
# the warm plan-cache load are tracked side by side.
# BenchmarkCampaignThroughput tracks fleet chips/s two ways — in-process
# manager vs HTTP loopback — so service overhead is visible PR over PR.
# BenchmarkCoordinatorThroughput tracks sharded chips/s across 1/2/4
# loopback daemons, so the coordinator's scaling is visible PR over PR.
BENCH_PATTERN="${BENCH_PATTERN:-BenchmarkFlowChip|BenchmarkEngineRunChips|BenchmarkPrepare|BenchmarkAblationAlignSolver|BenchmarkCampaignThroughput|BenchmarkCoordinatorThroughput}"
BENCH_PKGS=". ./fleet ./fleet/coord"

# Short mode: the online flow only, the numbers the bench-regression CI job
# gates on. The unanchored pattern matches both BenchmarkFlowChip (per-chip
# ns/op + allocs/op) and BenchmarkFlowChipBatched (fleet chips/s through the
# batched multi-RHS prediction path).
if [ "${BENCH_SHORT:-}" = 1 ]; then
  BENCH_PATTERN='BenchmarkFlowChip'
  BENCH_PKGS="."
fi

BENCH_TIME="${BENCH_TIME:-1x}"
BENCH_OUT="${BENCH_OUT:-BENCH_8.json}"
BENCH_LABEL="${BENCH_LABEL:-${BENCH_OUT%.json}}"

# shellcheck disable=SC2086 — BENCH_PKGS is a deliberate word list.
go test -run '^$' -bench "$BENCH_PATTERN" -benchtime "$BENCH_TIME" $BENCH_PKGS |
  tee /dev/stderr |
  go run ./cmd/benchjson -label "$BENCH_LABEL" -o "$BENCH_OUT"
