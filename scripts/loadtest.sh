#!/usr/bin/env sh
# Boot one effitestd with production hardening enabled (auth, a deliberately
# small admission bound, rate limiting, metrics), swarm it with
# cmd/effitest-load, and verdict the run: only 2xx/401/413/429 answers,
# counters consistent with the swarm's outside view, and a clean SIGTERM
# drain afterwards. The tool's exit status is the gate.
#
# Usage (from the repository root):
#   scripts/loadtest.sh                  # short mode: CI smoke (~200 clients, 5s)
#   LOADTEST_FULL=1 scripts/loadtest.sh  # full run -> BENCH_7.json
#   LOADTEST_OUT=/tmp/r.json LOADTEST_PORT=18099 scripts/loadtest.sh
set -eu

PORT="${LOADTEST_PORT:-18097}"
TOKEN="${LOADTEST_TOKEN:-loadtest-secret}"

if [ "${LOADTEST_FULL:-}" = 1 ]; then
  CLIENTS="${LOADTEST_CLIENTS:-2000}"
  DURATION="${LOADTEST_DURATION:-20s}"
  OUT="${LOADTEST_OUT:-BENCH_7.json}"
  LABEL="${LOADTEST_LABEL:-BENCH_7}"
else
  CLIENTS="${LOADTEST_CLIENTS:-200}"
  DURATION="${LOADTEST_DURATION:-5s}"
  OUT="${LOADTEST_OUT:-/tmp/loadtest_short.json}"
  LABEL="${LOADTEST_LABEL:-loadtest-short}"
fi

BIN="$(mktemp -d)"
trap 'rm -rf "$BIN"' EXIT
go build -o "$BIN/effitestd" ./cmd/effitestd
go build -o "$BIN/effitest-load" ./cmd/effitest-load

# The admission bound is set far below what the swarm submits, so 429s are
# guaranteed; the rate limit is set high so every 429 is attributable to
# admission control (the tool's cross-check covers both counters either way).
# Request logs go to a file: the swarm generates one log line per request,
# which would drown CI output. The last lines are shown on failure.
DLOG="$BIN/effitestd.log"
"$BIN/effitestd" -addr "127.0.0.1:$PORT" -workers 2 \
  -auth-token "$TOKEN" \
  -max-queued-campaigns 8 \
  -rate-limit 100000 -rate-burst 200000 \
  -route-timeout 2m \
  -drain-timeout 60s 2> "$DLOG" &
DPID=$!
# Propagate the daemon's drain status even when the tool fails first.
stop_daemon() {
  kill -TERM "$DPID" 2>/dev/null || true
  wait "$DPID"
}

for i in $(seq 1 50); do
  curl -sf "127.0.0.1:$PORT/healthz" > /dev/null 2>&1 && break
  sleep 0.2
done

STATUS=0
"$BIN/effitest-load" \
  -addr "http://127.0.0.1:$PORT" -token "$TOKEN" \
  -clients "$CLIENTS" -duration "$DURATION" \
  -label "$LABEL" -o "$OUT" || STATUS=$?

stop_daemon || { echo "effitestd did not drain cleanly" >&2; STATUS=1; }
[ "$STATUS" -eq 0 ] || { echo "--- last effitestd log lines ---" >&2; tail -40 "$DLOG" >&2; }
exit "$STATUS"
