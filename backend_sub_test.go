// Backend-substitution coverage: the measurement transport behind the
// engine is pluggable, and substituting it must be observationally neutral
// (record-then-replay reproduces the golden pipeline bit for bit) or
// loudly typed (injected faults surface through ChipResult.Err without
// wedging the worker pool).
package effitest_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"effitest"
	"effitest/internal/conformance"
)

// pipelineScenario pulls one named pipeline scenario out of the checked-in
// conformance matrix.
func pipelineScenario(t *testing.T, name string) conformance.Scenario {
	t.Helper()
	for _, sc := range conformance.DefaultMatrix() {
		if sc.Name() == name {
			return sc
		}
	}
	t.Fatalf("scenario %s not in DefaultMatrix", name)
	panic("unreachable")
}

func snapshotJSON(t *testing.T, res *conformance.PipelineResult) string {
	t.Helper()
	b, err := json.Marshal(res.Snap)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestReplayBackendBitIdenticalToSimulated runs one golden pipeline
// scenario three ways — plain simulated ATE, simulated ATE behind a
// recorder, and a replay of that recording — and requires all three
// canonical snapshots to be byte-identical.
func TestReplayBackendBitIdenticalToSimulated(t *testing.T) {
	sc := pipelineScenario(t, "pipeline_tiny64_heuristic_eps0.002_seed1")
	ctx := context.Background()

	plain, err := conformance.RunPipeline(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}

	rec := effitest.NewRecorder(nil)
	sc.Backend = rec
	recorded, err := conformance.RunPipeline(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}

	sc.Backend = effitest.NewReplayer(rec.Trace())
	replayed, err := conformance.RunPipeline(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}

	want := snapshotJSON(t, plain)
	if got := snapshotJSON(t, recorded); got != want {
		t.Fatalf("recording wrapper perturbed the pipeline:\nplain    %s\nrecorded %s", want, got)
	}
	if got := snapshotJSON(t, replayed); got != want {
		t.Fatalf("replay diverged from simulated run:\nplain    %s\nreplayed %s", want, got)
	}
}

// TestFaultBackendSurfacesTypedErrors injects an open fault and a step
// fault into a 16-chip fleet and requires: the two faulted chips carry
// typed errors in ChipResult.Err, every other chip completes with an
// outcome identical to a clean run, and the engine remains usable
// afterwards (the pool is not wedged).
func TestFaultBackendSurfacesTypedErrors(t *testing.T) {
	c, err := effitest.Generate(effitest.NewProfile("faultfleet", 24, 200, 3, 24), 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const nChips = 16
	opts := []effitest.Option{effitest.WithWorkers(4), effitest.WithPeriodQuantile(0.8413, 200)}

	clean, err := effitest.New(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	chips, err := clean.SampleChips(ctx, 9, nChips)
	if err != nil {
		t.Fatal(err)
	}
	cleanOuts, err := clean.RunChipsAll(ctx, chips)
	if err != nil {
		t.Fatal(err)
	}

	fb := effitest.NewFaultBackend(nil).FailOpen(5).FailAtStep(3, 2)
	faulty, err := effitest.New(c, append(opts, effitest.WithBackend(fb))...)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for r := range faulty.RunChips(ctx, chips) {
		seen++
		switch r.Index {
		case 3, 5:
			if !errors.Is(r.Err, effitest.ErrInjectedFault) {
				t.Fatalf("chip %d: Err = %v, want ErrInjectedFault", r.Index, r.Err)
			}
			var fe *effitest.FaultError
			if !errors.As(r.Err, &fe) || fe.Chip != r.Index {
				t.Fatalf("chip %d: fault detail = %v", r.Index, r.Err)
			}
		default:
			if r.Err != nil {
				t.Fatalf("chip %d: unexpected error %v", r.Index, r.Err)
			}
			if !engineOutcomesEqual(r.Outcome, cleanOuts[r.Index]) {
				t.Fatalf("chip %d: outcome perturbed by faults on other chips", r.Index)
			}
		}
	}
	if seen != nChips {
		t.Fatalf("stream yielded %d results, want %d (pool wedged?)", seen, nChips)
	}
	if st := fb.Stats(); st.Faults != 2 {
		t.Fatalf("injected faults = %d, want 2", st.Faults)
	}

	// The engine (and its worker pool machinery) must remain fully usable
	// after the faulted fleet.
	again, err := faulty.RunChip(ctx, chips[0])
	if err != nil {
		t.Fatal(err)
	}
	if !engineOutcomesEqual(again, cleanOuts[0]) {
		t.Fatal("post-fault run diverged")
	}
}

// TestObserverSeesTypedEvents drives a small fleet with an observer and
// cross-checks the event stream against the outcomes.
func TestObserverSeesTypedEvents(t *testing.T) {
	c, err := effitest.Generate(effitest.NewProfile("observed", 24, 200, 3, 24), 4)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var prepares, chipDones, batchStarts, batchEnds, steps, solves int
	var stepIters int
	obs := effitest.ObserverFunc(func(e effitest.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch e.(type) {
		case effitest.PrepareDoneEvent:
			prepares++
		case effitest.ChipDoneEvent:
			chipDones++
		case effitest.BatchStartEvent:
			batchStarts++
		case effitest.BatchEndEvent:
			batchEnds++
		case effitest.FrequencyStepEvent:
			steps++
			stepIters++
		case effitest.AlignSolveEvent:
			solves++
		}
	})
	eng, err := effitest.New(c,
		effitest.WithWorkers(2),
		effitest.WithPeriodQuantile(0.8413, 200),
		effitest.WithObserver(obs),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	chips, err := eng.SampleChips(ctx, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := eng.RunChipsAll(ctx, chips)
	if err != nil {
		t.Fatal(err)
	}
	wantIters := 0
	for _, o := range outs {
		wantIters += o.Iterations
	}
	mu.Lock()
	defer mu.Unlock()
	if prepares != 1 {
		t.Fatalf("PrepareDone events = %d, want 1", prepares)
	}
	if chipDones != len(chips) {
		t.Fatalf("ChipDone events = %d, want %d", chipDones, len(chips))
	}
	if batchStarts != batchEnds || batchStarts != len(chips)*len(eng.Plan().Batches) {
		t.Fatalf("batch events: %d starts, %d ends, want %d each",
			batchStarts, batchEnds, len(chips)*len(eng.Plan().Batches))
	}
	if stepIters != wantIters {
		t.Fatalf("FrequencyStep events = %d, outcomes record %d iterations", stepIters, wantIters)
	}
	if solves == 0 {
		t.Fatal("no AlignSolve events")
	}
}

// TestReplayDivergenceSurfacesThroughEngine replays a trace against a
// different flow configuration; the typed divergence error must come out
// of ChipResult.Err.
func TestReplayDivergenceSurfacesThroughEngine(t *testing.T) {
	c, err := effitest.Generate(effitest.NewProfile("diverge", 24, 200, 3, 24), 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rec := effitest.NewRecorder(nil)
	eng, err := effitest.New(c, effitest.WithPeriodQuantile(0.8413, 200), effitest.WithBackend(rec))
	if err != nil {
		t.Fatal(err)
	}
	chips, err := eng.SampleChips(ctx, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunChipsAll(ctx, chips); err != nil {
		t.Fatal(err)
	}

	// Re-run the recorded chips under a tighter ε: the flow needs more (and
	// different) frequency steps than were recorded, so the replay must
	// fail with a typed trace error rather than fabricate measurements.
	replay, err := effitest.New(c,
		effitest.WithPeriodQuantile(0.8413, 200),
		effitest.WithEpsilon(0.002/4),
		effitest.WithBackend(effitest.NewReplayer(rec.Trace())),
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = replay.RunChip(ctx, chips[0])
	if err == nil {
		t.Fatal("tighter-ε replay succeeded; expected a typed trace error")
	}
	if !errors.Is(err, effitest.ErrTraceDivergence) && !errors.Is(err, effitest.ErrTraceExhausted) {
		t.Fatalf("divergent replay error = %v, want a typed trace error", err)
	}
	if !strings.Contains(err.Error(), "chip") {
		t.Fatalf("divergence error lacks chip detail: %v", err)
	}
}
