package workload

import (
	"math"
	"slices"
	"testing"

	"effitest/internal/circuit"
	"effitest/internal/tester"
)

func TestValidAndCanonical(t *testing.T) {
	for _, name := range append(Types(), "") {
		if !Valid(name) {
			t.Errorf("Valid(%q) = false", name)
		}
	}
	for _, name := range []string{"binning", "EFFITEST", "clock_binning", "aging"} {
		if Valid(name) {
			t.Errorf("Valid(%q) = true", name)
		}
	}
	if got := Canonical(""); got != TypeEffiTest {
		t.Errorf("Canonical(\"\") = %q", got)
	}
	if got := Canonical(TypeAgingDrift); got != TypeAgingDrift {
		t.Errorf("Canonical(aging) = %q", got)
	}
}

func TestCheck(t *testing.T) {
	cases := []struct {
		name    string
		edges   []float64
		drift   float64
		wantErr bool
	}{
		{TypeEffiTest, nil, 0, false},
		{"", nil, 0, false},
		{TypeClockBinning, []float64{1, 2}, 0, false},
		{TypeAgingDrift, nil, 0.05, false},
		{TypeAgingDrift, nil, 0, false},
		{"bogus", nil, 0, true},
		{TypeClockBinning, nil, 0, true},             // binning needs edges
		{TypeClockBinning, []float64{2, 1}, 0, true}, // not ascending
		{TypeEffiTest, []float64{1}, 0, true},        // edges without binning
		{TypeEffiTest, nil, 0.1, true},               // drift without aging
		{TypeAgingDrift, nil, 5, true},               // drift out of range
		{TypeAgingDrift, []float64{1}, 0.05, true},   // edges on aging
		{TypeClockBinning, []float64{1}, 0.05, true}, // drift on binning
		{TypeAgingDrift, nil, math.NaN(), true},      // non-finite drift
		{TypeClockBinning, []float64{0, 1}, 0, true}, // non-positive edge
		{TypeClockBinning, []float64{math.Inf(1)}, 0, true},
	}
	for _, c := range cases {
		err := Check(c.name, c.edges, c.drift)
		if (err != nil) != c.wantErr {
			t.Errorf("Check(%q, %v, %v) err = %v, wantErr %v", c.name, c.edges, c.drift, err, c.wantErr)
		}
	}
}

func TestClassify(t *testing.T) {
	edges := []float64{1.0, 1.1, 1.25}
	cases := []struct {
		achieved float64
		want     int
	}{
		{0.5, 0}, {1.0, 0}, {1.0001, 1}, {1.1, 1}, {1.2, 2}, {1.25, 2}, {1.26, 3}, {99, 3},
	}
	for _, c := range cases {
		if got := Classify(edges, c.achieved); got != c.want {
			t.Errorf("Classify(%v) = %d, want %d", c.achieved, got, c.want)
		}
	}
}

func TestBinAggMergeExact(t *testing.T) {
	edges := []float64{1.0, 1.1, 1.25}
	achieved := []float64{0.9, 1.05, 1.07, 1.2, 1.3, 0.2, 1.11, 1.25, 2.0, 1.0}

	// Sequential fold.
	whole := NewBinAgg(edges)
	for _, a := range achieved {
		whole.Observe(a)
	}
	whole.ObserveUnbinned()
	whole.ObserveUnbinned()

	// Every contiguous 3-way split must merge to the identical histogram,
	// in either merge order.
	for i := 0; i <= len(achieved); i++ {
		for j := i; j <= len(achieved); j++ {
			parts := []*BinAgg{NewBinAgg(edges), NewBinAgg(edges), NewBinAgg(edges)}
			for _, a := range achieved[:i] {
				parts[0].Observe(a)
			}
			for _, a := range achieved[i:j] {
				parts[1].Observe(a)
			}
			for _, a := range achieved[j:] {
				parts[2].Observe(a)
			}
			parts[0].ObserveUnbinned()
			parts[2].ObserveUnbinned()

			merged := NewBinAgg(edges)
			for _, p := range []*BinAgg{parts[2], parts[0], parts[1]} { // shuffled order
				if err := merged.Merge(p); err != nil {
					t.Fatalf("merge: %v", err)
				}
			}
			if !slices.Equal(merged.Counts, whole.Counts) || merged.Unbinned != whole.Unbinned {
				t.Fatalf("split (%d,%d): merged %v/%d != whole %v/%d",
					i, j, merged.Counts, merged.Unbinned, whole.Counts, whole.Unbinned)
			}
		}
	}
	if whole.Chips() != len(achieved)+2 {
		t.Errorf("Chips() = %d, want %d", whole.Chips(), len(achieved)+2)
	}
}

func TestBinAggMergeEdgeMismatch(t *testing.T) {
	a := NewBinAgg([]float64{1, 2})
	b := NewBinAgg([]float64{1, 3})
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched edges did not error")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merging nil errored: %v", err)
	}
}

func TestBinAggClone(t *testing.T) {
	a := NewBinAgg([]float64{1, 2})
	a.Observe(0.5)
	c := a.Clone()
	c.Observe(1.5)
	c.Edges[0] = 9
	if a.Counts[1] != 0 || a.Edges[0] != 1 {
		t.Errorf("clone aliases original: %+v", a)
	}
	var nilAgg *BinAgg
	if nilAgg.Clone() != nil {
		t.Error("nil.Clone() != nil")
	}
}

func testChip(t *testing.T) *tester.Chip {
	t.Helper()
	c, err := circuit.Generate(circuit.TinyProfile("wl-test", 16, 120, 4, 24), 7)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return tester.SampleChip(c, 11, 0)
}

func TestAchievedPeriod(t *testing.T) {
	ch := testChip(t)
	x := make([]float64, ch.Circuit.NumFF)

	// With zero skew the achieved period is exactly the critical delay.
	if got, want := AchievedPeriod(ch, x), ch.CriticalDelay(); got != want {
		t.Errorf("zero-skew achieved %v != critical delay %v", got, want)
	}

	// The chip passes setup exactly at (and not below) the achieved period.
	for i := range x {
		x[i] = float64(i%3) * 0.01
	}
	ap := AchievedPeriod(ch, x)
	if !ch.PassesAt(ap, x) {
		t.Errorf("chip fails setup at its own achieved period %v", ap)
	}
	if ch.PassesAt(ap-1e-9, x) {
		t.Errorf("chip passes setup below its achieved period %v", ap)
	}
}

func TestApplyDrift(t *testing.T) {
	ch := testChip(t)
	aged := ApplyDrift(ch, 0.1)
	if aged == ch {
		t.Fatal("nonzero drift returned the input chip")
	}
	for i := range ch.TrueMax {
		if want := ch.TrueMax[i] * 1.1; aged.TrueMax[i] != want {
			t.Fatalf("TrueMax[%d] = %v, want %v", i, aged.TrueMax[i], want)
		}
		if want := ch.TrueMin[i] * 1.1; aged.TrueMin[i] != want {
			t.Fatalf("TrueMin[%d] = %v, want %v", i, aged.TrueMin[i], want)
		}
		if aged.TrueMin[i] > aged.TrueMax[i] {
			t.Fatalf("drift broke TrueMin <= TrueMax at %d", i)
		}
	}
	if aged.Circuit != ch.Circuit || aged.Index != ch.Index {
		t.Error("drift changed chip identity")
	}
	if ApplyDrift(ch, 0) != ch {
		t.Error("zero drift did not return the input chip")
	}

	// Determinism: applying the same drift twice gives identical slices.
	again := ApplyDrift(ch, 0.1)
	if !slices.Equal(aged.TrueMax, again.TrueMax) || !slices.Equal(aged.TrueMin, again.TrueMin) {
		t.Error("ApplyDrift is not deterministic")
	}

	all := ApplyDriftAll([]*tester.Chip{ch, ch}, 0.05)
	if len(all) != 2 || all[0] == ch {
		t.Error("ApplyDriftAll did not copy")
	}
	if got := ApplyDriftAll([]*tester.Chip{ch}, 0); got[0] != ch {
		t.Error("ApplyDriftAll(0) did not reuse input")
	}
}

func TestDriftMonotoneAchieved(t *testing.T) {
	// Aging can only slow a chip down: achieved period under any fixed
	// configuration is non-decreasing in drift.
	ch := testChip(t)
	x := make([]float64, ch.Circuit.NumFF)
	for i := range x {
		x[i] = float64(i%2) * 0.02
	}
	prev := AchievedPeriod(ApplyDrift(ch, -0.1), x)
	for _, d := range []float64{0, 0.05, 0.1, 0.5} {
		ap := AchievedPeriod(ApplyDrift(ch, d), x)
		if ap < prev {
			t.Fatalf("achieved period decreased with drift %v: %v < %v", d, ap, prev)
		}
		prev = ap
	}
}
