// Package workload defines the campaign workload types that run over the
// EffiTest engine, and the small exactly-mergeable aggregates they report.
//
// The engine itself knows one program: tune a chip's buffers and predict
// pass/fail at the target period. The sister TUM papers describe campaign
// types that are programs *over* that flow — post-silicon clock binning
// (classify each chip into a frequency bin from its post-tuning achievable
// period) and aging drift sweeps (re-run a population under deterministic
// delay-drift schedules and report yield versus drift). This package names
// those workloads, implements their per-chip measurements (AchievedPeriod,
// ApplyDrift) and their mergeable aggregates (BinAgg), and validates their
// parameters, so the fleet layer, the manifest expander, and the
// conformance matrix all agree on what a workload means.
//
// Like yield.Agg, every aggregate here is built from exact integer counts:
// Merge is associative and commutative, so a sharded fleet campaign folds
// bit-identically to a single-process run regardless of shard boundaries.
package workload

import "fmt"

// Workload types. The empty string is accepted everywhere and means
// TypeEffiTest, so existing campaign requests keep their meaning.
const (
	// TypeEffiTest is the standard tune-and-predict flow of the source
	// paper: configure every chip at the target period and report yield.
	TypeEffiTest = "effitest"
	// TypeClockBinning classifies each chip into a frequency bin from its
	// post-tuning achievable period (the clock-binning sister paper). A
	// campaign of this type carries ascending period bin edges and reports
	// a per-bin chip histogram next to the usual yield aggregate.
	TypeClockBinning = "clock-binning"
	// TypeAgingDrift re-runs the population with every chip's realized
	// delays scaled by (1+drift), modeling aged silicon (the criticality
	// sister paper). A sweep is one campaign per drift value; the suite
	// report assembles the yield-vs-drift curve from the exact aggregates.
	TypeAgingDrift = "aging-drift"
)

// Types returns the registered workload type names in canonical order.
func Types() []string {
	return []string{TypeEffiTest, TypeClockBinning, TypeAgingDrift}
}

// Valid reports whether name is a registered workload type. The empty
// string is valid and means TypeEffiTest.
func Valid(name string) bool {
	switch name {
	case "", TypeEffiTest, TypeClockBinning, TypeAgingDrift:
		return true
	}
	return false
}

// Canonical maps a wire workload name to its canonical form: the empty
// string becomes TypeEffiTest, everything else is returned unchanged.
func Canonical(name string) string {
	if name == "" {
		return TypeEffiTest
	}
	return name
}

// Check validates a (workload, bin edges, drift) triple as it appears on a
// campaign spec. It is shared by the manifest validator, Manager.Submit and
// the HTTP submit handler so every entry point rejects the same inputs.
func Check(name string, edges []float64, drift float64) error {
	if !Valid(name) {
		return fmt.Errorf("unknown workload %q (have %v)", name, Types())
	}
	c := Canonical(name)
	if c == TypeClockBinning {
		if err := ValidateEdges(edges); err != nil {
			return err
		}
	} else if len(edges) > 0 {
		return fmt.Errorf("bin edges are only valid for the %s workload", TypeClockBinning)
	}
	if c == TypeAgingDrift {
		if err := ValidateDrift(drift); err != nil {
			return err
		}
	} else if drift != 0 {
		return fmt.Errorf("drift is only valid for the %s workload", TypeAgingDrift)
	}
	return nil
}
