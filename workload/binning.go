package workload

import (
	"fmt"
	"math"
	"slices"

	"effitest/internal/tester"
)

// AchievedPeriod returns the smallest clock period at which the chip meets
// every setup constraint under the configured buffer vector x:
//
//	max over paths p of  TrueMax[p] + x[From(p)] - x[To(p)]
//
// This is the chip's post-tuning achievable period — the quantity clock
// binning classifies on. Hold constraints are period-independent and so do
// not enter; a chip whose configuration violates hold is reported
// unconfigured by the flow and lands in the unbinned bucket upstream.
func AchievedPeriod(ch *tester.Chip, x []float64) float64 {
	achieved := 0.0
	for p := range ch.Circuit.Paths {
		pt := &ch.Circuit.Paths[p]
		d := ch.TrueMax[p] + x[pt.From] - x[pt.To]
		if d > achieved {
			achieved = d
		}
	}
	return achieved
}

// ValidateEdges checks clock-binning period bin edges: at least one edge,
// every edge finite and positive, strictly ascending.
func ValidateEdges(edges []float64) error {
	if len(edges) == 0 {
		return fmt.Errorf("clock binning needs at least one period bin edge")
	}
	for i, e := range edges {
		if math.IsNaN(e) || math.IsInf(e, 0) || e <= 0 {
			return fmt.Errorf("bin edge %d: %v is not a positive finite period", i, e)
		}
		if i > 0 && e <= edges[i-1] {
			return fmt.Errorf("bin edge %d: %v does not ascend past %v", i, e, edges[i-1])
		}
	}
	return nil
}

// Classify returns the bin index for an achieved period: the first bin
// whose edge is >= achieved (bin i is sold as "runs at period edges[i]").
// It returns len(edges) — the unbinned bucket — when the chip is slower
// than every edge.
func Classify(edges []float64, achieved float64) int {
	for i, e := range edges {
		if achieved <= e {
			return i
		}
	}
	return len(edges)
}

// BinAgg is the exactly-mergeable clock-binning histogram: one integer
// chip count per period bin plus an unbinned bucket for chips slower than
// the last edge or never configured. Like yield.Agg, Merge is elementwise
// integer addition — associative and commutative — so sharded campaigns
// fold bit-identically to a single-process run.
type BinAgg struct {
	// Edges are the ascending period bin edges; bin i counts chips whose
	// achieved period is <= Edges[i] (and > Edges[i-1] for i > 0).
	Edges []float64
	// Counts has one chip count per edge.
	Counts []int
	// Unbinned counts chips slower than every edge or never configured.
	Unbinned int
}

// NewBinAgg returns an empty histogram over the given edges. The edge
// slice is copied; callers may reuse theirs.
func NewBinAgg(edges []float64) *BinAgg {
	return &BinAgg{Edges: slices.Clone(edges), Counts: make([]int, len(edges))}
}

// Observe bins one configured chip by its achieved period.
func (b *BinAgg) Observe(achieved float64) {
	if i := Classify(b.Edges, achieved); i < len(b.Counts) {
		b.Counts[i]++
	} else {
		b.Unbinned++
	}
}

// ObserveUnbinned counts one chip that never reached a configuration (the
// flow gave up or errored), which no frequency bin can claim.
func (b *BinAgg) ObserveUnbinned() {
	b.Unbinned++
}

// Chips returns the total chips observed across all buckets.
func (b *BinAgg) Chips() int {
	n := b.Unbinned
	for _, c := range b.Counts {
		n += c
	}
	return n
}

// Merge folds another histogram into b. The histograms must share edges —
// merging across different binnings is meaningless and is an error rather
// than a silent misfold.
func (b *BinAgg) Merge(o *BinAgg) error {
	if o == nil {
		return nil
	}
	if !slices.Equal(b.Edges, o.Edges) {
		return fmt.Errorf("bin edges differ: %v vs %v", b.Edges, o.Edges)
	}
	for i, c := range o.Counts {
		b.Counts[i] += c
	}
	b.Unbinned += o.Unbinned
	return nil
}

// Clone returns an independent copy.
func (b *BinAgg) Clone() *BinAgg {
	if b == nil {
		return nil
	}
	return &BinAgg{Edges: slices.Clone(b.Edges), Counts: slices.Clone(b.Counts), Unbinned: b.Unbinned}
}
