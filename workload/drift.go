package workload

import (
	"fmt"
	"math"
	"slices"

	"effitest/internal/tester"
)

// MaxDrift bounds the aging sweep: a drift of 1.0 doubles every delay,
// which is already far beyond any aging model worth simulating.
const MaxDrift = 1.0

// ValidateDrift checks one aging-drift sweep point. Drift scales realized
// delays by (1+d), so it must be finite and keep delays positive; negative
// drift (modeling e.g. burn-in speedup) is allowed down to -0.5.
func ValidateDrift(d float64) error {
	if math.IsNaN(d) || math.IsInf(d, 0) {
		return fmt.Errorf("drift %v is not finite", d)
	}
	if d < -0.5 || d > MaxDrift {
		return fmt.Errorf("drift %v outside [-0.5, %v]", d, MaxDrift)
	}
	return nil
}

// ApplyDrift returns a copy of the chip aged by drift d: every realized
// path delay (max and min) scaled by (1+d). Scaling both bounds by the
// same factor preserves the sampler's TrueMin <= TrueMax invariant, and
// the transform is a pure function of the input chip, so drifted
// populations stay deterministic in (seed, index, d) and identical across
// shard boundaries. The input chip is not modified.
func ApplyDrift(ch *tester.Chip, d float64) *tester.Chip {
	if d == 0 {
		return ch
	}
	aged := &tester.Chip{
		Circuit: ch.Circuit,
		Index:   ch.Index,
		TrueMax: slices.Clone(ch.TrueMax),
		TrueMin: slices.Clone(ch.TrueMin),
	}
	s := 1 + d
	for i := range aged.TrueMax {
		aged.TrueMax[i] *= s
		aged.TrueMin[i] *= s
	}
	return aged
}

// ApplyDriftAll ages a whole population, reusing the input slice when d is
// zero.
func ApplyDriftAll(chips []*tester.Chip, d float64) []*tester.Chip {
	if d == 0 {
		return chips
	}
	out := make([]*tester.Chip, len(chips))
	for i, ch := range chips {
		out[i] = ApplyDrift(ch, d)
	}
	return out
}
