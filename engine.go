package effitest

import (
	"context"
	"fmt"
	"iter"
	"math"

	"effitest/internal/circuit"
	"effitest/internal/core"
	"effitest/internal/rng"
	"effitest/internal/tester"
	"effitest/internal/yield"
)

// ChipResult is one element of the stream produced by Engine.RunChips: the
// chip's position in the input slice plus either its outcome or its
// per-chip error.
type ChipResult = core.ChipResult

// ProposedStats aggregates per-chip outcomes of the EffiTest flow over a
// chip population (yield, average tester cost, solver runtimes).
type ProposedStats = yield.ProposedStats

// ErrChipCircuitMismatch is returned when a chip is run on an engine (or
// plan) prepared for a different circuit instance.
var ErrChipCircuitMismatch = core.ErrChipCircuitMismatch

// Option configures an Engine at construction time. Options layer over the
// paper-aligned defaults of DefaultConfig; the zero set of options gives
// the flow exactly as evaluated in the paper.
type Option func(*engineSettings)

type engineSettings struct {
	cfg        core.Config
	period     float64
	periodSet  bool
	quantile   float64
	calibChips int
}

// WithConfig replaces the engine's entire flow configuration. Options
// appearing after it still apply on top, so it can serve as a custom base.
func WithConfig(cfg Config) Option {
	return func(s *engineSettings) { s.cfg = cfg }
}

// WithAlignMode selects the §3.3 alignment solver (AlignHeuristic,
// AlignFastMILP, AlignPaperILP or AlignOff).
func WithAlignMode(m AlignMode) Option {
	return func(s *engineSettings) { s.cfg.AlignMode = m }
}

// WithConfigureMode selects the final buffer-configuration solver
// (ConfigureScalable or ConfigureMILP).
func WithConfigureMode(m ConfigureMode) Option {
	return func(s *engineSettings) { s.cfg.ConfigMode = m }
}

// WithEpsilon sets the delay-range termination threshold ε of Procedure 2
// in ns: a path is resolved once its window is narrower than eps.
func WithEpsilon(eps float64) Option {
	return func(s *engineSettings) { s.cfg.Eps = eps }
}

// WithSeed sets the master seed driving every random stream (hold-bound
// sampling, tie-breaking, period calibration).
func WithSeed(seed int64) Option {
	return func(s *engineSettings) { s.cfg.Seed = seed }
}

// WithWorkers bounds the goroutines used by RunChips and everything built
// on it. 0 (the default) means one worker per logical CPU; 1 forces
// sequential execution; negative counts are rejected by New. Results are
// bit-identical at any worker count.
func WithWorkers(n int) Option {
	return func(s *engineSettings) { s.cfg.Workers = n }
}

// WithMaxBatch caps the size of a test batch (0 = unlimited).
func WithMaxBatch(n int) Option {
	return func(s *engineSettings) { s.cfg.MaxBatch = n }
}

// WithSlotFilling enables or disables §3.2's empty-slot filling with
// high-variance paths.
func WithSlotFilling(enabled bool) Option {
	return func(s *engineSettings) { s.cfg.FillSlots = enabled }
}

// WithHoldYield sets the hold-yield target Y of Eq. (20).
func WithHoldYield(y float64) Option {
	return func(s *engineSettings) { s.cfg.HoldYield = y }
}

// WithHoldSamples sets the Monte-Carlo sample count M of §3.5.
func WithHoldSamples(n int) Option {
	return func(s *engineSettings) { s.cfg.HoldSamples = n }
}

// WithTesterResolution sets the ATE clock-period granularity in ns.
func WithTesterResolution(r float64) Option {
	return func(s *engineSettings) { s.cfg.TesterResolution = r }
}

// WithPeriod pins the engine's test clock period Td (ns) instead of
// calibrating it from the no-tuning critical-delay distribution.
func WithPeriod(td float64) Option {
	return func(s *engineSettings) {
		s.period = td
		s.periodSet = true
	}
}

// WithPeriodQuantile calibrates the engine's test period as the q-quantile
// of the no-tuning critical delay over `chips` Monte-Carlo chips (the
// default is q = 0.8413 over 2000 chips — the paper's T2).
func WithPeriodQuantile(q float64, chips int) Option {
	return func(s *engineSettings) {
		s.quantile = q
		s.calibChips = chips
		s.periodSet = false
	}
}

// Engine is the per-circuit entry point of the EffiTest flow: it holds the
// prepared Plan (Procedure 1 path selection, test batches, hold bounds) and
// the calibrated test period, and executes chips — sequentially or fanned
// across a bounded worker pool — with context cancellation.
//
// An Engine is immutable after New and safe for concurrent use.
type Engine struct {
	c      *circuit.Circuit
	plan   *core.Plan
	period float64
}

// New prepares an Engine for the circuit: it runs the offline flow
// (Prepare) under the configuration assembled from the options and
// calibrates the test period (unless WithPeriod pinned one). Invalid
// option values (non-positive ε, negative worker counts, out-of-range
// quantiles, ...) fail construction with a descriptive error.
//
//	eng, err := effitest.New(c,
//		effitest.WithAlignMode(effitest.AlignHeuristic),
//		effitest.WithEpsilon(0.002),
//		effitest.WithWorkers(8),
//	)
func New(c *Circuit, opts ...Option) (*Engine, error) {
	return NewCtx(context.Background(), c, opts...)
}

// NewCtx is New with cancellation of the construction work. The period
// calibration (a Monte-Carlo sweep over thousands of chips) is checked
// against the context; the offline Prepare itself is not yet cancellable,
// so on large circuits a cancelled NewCtx returns only after Prepare
// finishes.
func NewCtx(ctx context.Context, c *Circuit, opts ...Option) (*Engine, error) {
	s := engineSettings{
		cfg:        core.DefaultConfig(),
		quantile:   0.8413,
		calibChips: 2000,
	}
	for _, o := range opts {
		o(&s)
	}
	if s.periodSet {
		if math.IsNaN(s.period) || math.IsInf(s.period, 0) || s.period <= 0 {
			return nil, fmt.Errorf("effitest: test period must be positive, got %v", s.period)
		}
	} else {
		if math.IsNaN(s.quantile) || s.quantile <= 0 || s.quantile >= 1 {
			return nil, fmt.Errorf("effitest: period quantile must be in (0, 1), got %v", s.quantile)
		}
		if s.calibChips <= 0 {
			return nil, fmt.Errorf("effitest: period-quantile chip count must be positive, got %d", s.calibChips)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := core.Prepare(c, s.cfg)
	if err != nil {
		return nil, err
	}
	period := s.period
	if !s.periodSet {
		period, err = yield.PeriodQuantileCtx(ctx, c,
			rng.Seed(s.cfg.Seed, "engine-period", c.Name), s.calibChips, s.quantile, s.cfg.Workers)
		if err != nil {
			return nil, err
		}
	}
	return &Engine{c: c, plan: plan, period: period}, nil
}

// Circuit returns the engine's circuit.
func (e *Engine) Circuit() *Circuit { return e.c }

// Plan returns the prepared offline plan (groups, batches, hold bounds).
func (e *Engine) Plan() *Plan { return e.plan }

// Config returns the engine's flow configuration.
func (e *Engine) Config() Config { return e.plan.Cfg }

// Period returns the engine's test clock period Td in ns.
func (e *Engine) Period() float64 { return e.period }

// RunChip executes the online flow on one chip at the engine's period. The
// context is checked on every tester iteration, so cancellation aborts
// promptly with the context's error.
func (e *Engine) RunChip(ctx context.Context, ch *Chip) (*ChipOutcome, error) {
	return e.plan.RunChipCtx(ctx, ch, e.period)
}

// RunChipAt is RunChip at an explicit test period.
func (e *Engine) RunChipAt(ctx context.Context, ch *Chip, Td float64) (*ChipOutcome, error) {
	return e.plan.RunChipCtx(ctx, ch, Td)
}

// RunChips fans the chips across the engine's worker pool (WithWorkers) and
// streams one ChipResult per chip — outcome or per-chip error, plus index —
// strictly in input order. Outcomes are bit-identical to a sequential loop
// of RunChip calls. The sequence is single-use; breaking out of the range
// stops the remaining chips and releases the workers. Cancelling the
// context aborts in-flight chips promptly, and the remaining results carry
// the context's error.
func (e *Engine) RunChips(ctx context.Context, chips []*Chip) iter.Seq[ChipResult] {
	return e.plan.RunChips(ctx, chips, e.period, e.plan.Cfg.Workers)
}

// RunChipsAt is RunChips at an explicit test period.
func (e *Engine) RunChipsAt(ctx context.Context, chips []*Chip, Td float64) iter.Seq[ChipResult] {
	return e.plan.RunChips(ctx, chips, Td, e.plan.Cfg.Workers)
}

// RunChipsAll collects the full stream, returning one outcome per chip (in
// input order) or the lowest-index per-chip error.
func (e *Engine) RunChipsAll(ctx context.Context, chips []*Chip) ([]*ChipOutcome, error) {
	return e.plan.RunChipsAll(ctx, chips, e.period, e.plan.Cfg.Workers)
}

// Yield runs the full flow on every chip at the engine's period and
// aggregates yield and tester cost across the worker pool.
func (e *Engine) Yield(ctx context.Context, chips []*Chip) (ProposedStats, error) {
	return yield.ProposedCtx(ctx, e.plan, chips, e.period)
}

// YieldAt is Yield at an explicit test period.
func (e *Engine) YieldAt(ctx context.Context, chips []*Chip, Td float64) (ProposedStats, error) {
	return yield.ProposedCtx(ctx, e.plan, chips, Td)
}

// SampleChips manufactures n chips of the engine's circuit on the worker
// pool, deterministically in (seed, index).
func (e *Engine) SampleChips(ctx context.Context, seed int64, n int) ([]*Chip, error) {
	return tester.SampleChipsCtx(ctx, e.c, seed, n, e.plan.Cfg.Workers)
}
