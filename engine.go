package effitest

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"iter"
	"math"
	"slices"

	"effitest/internal/circuit"
	"effitest/internal/core"
	"effitest/internal/rng"
	"effitest/internal/tester"
	"effitest/internal/yield"
)

// ChipResult is one element of the stream produced by Engine.RunChips: the
// chip's position in the input slice plus either its outcome or its
// per-chip error.
type ChipResult = core.ChipResult

// ProposedStats aggregates per-chip outcomes of the EffiTest flow over a
// chip population (yield, average tester cost, solver runtimes).
type ProposedStats = yield.ProposedStats

// ErrChipCircuitMismatch is returned when a chip is run on an engine (or
// plan) prepared for a different circuit instance.
var ErrChipCircuitMismatch = core.ErrChipCircuitMismatch

// Option configures an Engine at construction time. Options layer over the
// paper-aligned defaults of DefaultConfig; the zero set of options gives
// the flow exactly as evaluated in the paper.
type Option func(*engineSettings)

type engineSettings struct {
	cfg        core.Config
	period     float64
	periodSet  bool
	quantile   float64
	calibChips int

	backend   tester.Backend
	observer  core.Observer
	cacheDir  string
	plan      *core.Plan
	planIsSet bool
}

// WithConfig replaces the engine's entire flow configuration. Options
// appearing after it still apply on top, so it can serve as a custom base.
func WithConfig(cfg Config) Option {
	return func(s *engineSettings) { s.cfg = cfg }
}

// WithAlignMode selects the §3.3 alignment solver (AlignHeuristic,
// AlignFastMILP, AlignPaperILP or AlignOff).
func WithAlignMode(m AlignMode) Option {
	return func(s *engineSettings) { s.cfg.AlignMode = m }
}

// WithConfigureMode selects the final buffer-configuration solver
// (ConfigureScalable or ConfigureMILP).
func WithConfigureMode(m ConfigureMode) Option {
	return func(s *engineSettings) { s.cfg.ConfigMode = m }
}

// WithEpsilon sets the delay-range termination threshold ε of Procedure 2
// in ns: a path is resolved once its window is narrower than eps.
func WithEpsilon(eps float64) Option {
	return func(s *engineSettings) { s.cfg.Eps = eps }
}

// WithSeed sets the master seed driving every random stream (hold-bound
// sampling, tie-breaking, period calibration).
func WithSeed(seed int64) Option {
	return func(s *engineSettings) { s.cfg.Seed = seed }
}

// WithWorkers bounds the goroutines used by RunChips and everything built
// on it. 0 (the default) means one worker per logical CPU; 1 forces
// sequential execution; negative counts are rejected by New. Results are
// bit-identical at any worker count.
func WithWorkers(n int) Option {
	return func(s *engineSettings) { s.cfg.Workers = n }
}

// WithPredictBatch sets how many in-flight chips RunChips and Stream group
// into one conditional-prediction kernel call per correlation group: the
// batched (TRSM-shaped) multi-RHS kernels stream each group's Cholesky
// factor through the cache once per k chips instead of once per chip. 0
// (the default) picks the width automatically; 1 disables batching;
// negative counts are rejected by New. Like WithWorkers this is purely an
// execution knob — results are bit-identical at any batch size, per-chip
// streaming order is unchanged, and the setting is excluded from the
// options fingerprint and the plan cache key.
func WithPredictBatch(k int) Option {
	return func(s *engineSettings) { s.cfg.PredictBatch = k }
}

// WithMaxBatch caps the size of a test batch (0 = unlimited).
func WithMaxBatch(n int) Option {
	return func(s *engineSettings) { s.cfg.MaxBatch = n }
}

// WithSlotFilling enables or disables §3.2's empty-slot filling with
// high-variance paths.
func WithSlotFilling(enabled bool) Option {
	return func(s *engineSettings) { s.cfg.FillSlots = enabled }
}

// WithHoldYield sets the hold-yield target Y of Eq. (20).
func WithHoldYield(y float64) Option {
	return func(s *engineSettings) { s.cfg.HoldYield = y }
}

// WithHoldSamples sets the Monte-Carlo sample count M of §3.5.
func WithHoldSamples(n int) Option {
	return func(s *engineSettings) { s.cfg.HoldSamples = n }
}

// WithTesterResolution sets the ATE clock-period granularity in ns.
func WithTesterResolution(r float64) Option {
	return func(s *engineSettings) { s.cfg.TesterResolution = r }
}

// WithPeriod pins the engine's test clock period Td (ns) instead of
// calibrating it from the no-tuning critical-delay distribution.
func WithPeriod(td float64) Option {
	return func(s *engineSettings) {
		s.period = td
		s.periodSet = true
	}
}

// WithPeriodQuantile calibrates the engine's test period as the q-quantile
// of the no-tuning critical delay over `chips` Monte-Carlo chips (the
// default is q = 0.8413 over 2000 chips — the paper's T2).
func WithPeriodQuantile(q float64, chips int) Option {
	return func(s *engineSettings) {
		s.quantile = q
		s.calibChips = chips
		s.periodSet = false
	}
}

// WithBackend selects the measurement transport chips are executed
// against: the in-process simulated ATE by default (SimBackend), a
// ReplayBackend for deterministic offline re-runs of a recorded trace, a
// FaultBackend for resilience tests, or any custom Backend bridging to
// real tester hardware. The backend must be safe for concurrent session
// opens; nil restores the default.
func WithBackend(be Backend) Option {
	return func(s *engineSettings) { s.backend = be }
}

// WithObserver registers a sink for typed flow events: prepare done, batch
// start/end, alignment solves, frequency steps and chip completions.
// Chips execute concurrently, so the observer must be safe for concurrent
// use and fast (it runs inline on the measurement hot path).
func WithObserver(obs Observer) Option {
	return func(s *engineSettings) { s.observer = obs }
}

// WithPlanCache points the engine at a content-addressed on-disk plan
// cache: if dir already holds a plan for this (circuit, configuration),
// the expensive offline Prepare is skipped entirely and the artifact is
// loaded instead; otherwise Prepare runs once and its result is stored for
// every later process. The cache key covers the circuit fingerprint, every
// Prepare-relevant configuration field and the plan format version, so a
// stale entry can never be served. PlanCacheHit reports what happened.
func WithPlanCache(dir string) Option {
	return func(s *engineSettings) { s.cacheDir = dir }
}

// WithPlan supplies a pre-built plan (typically from LoadPlan) instead of
// running Prepare. The plan must be bound to the same circuit handed to
// New. The engine adopts the plan's flow configuration wholesale, so
// flow-config options alongside WithPlan have no effect — except the
// execution knobs WithWorkers and WithPredictBatch, which still apply on
// top, since neither ever shaped a plan.
func WithPlan(pl *Plan) Option {
	return func(s *engineSettings) {
		s.plan = pl
		s.planIsSet = true
	}
}

// Engine is the per-circuit entry point of the EffiTest flow: it holds the
// prepared Plan (Procedure 1 path selection, test batches, hold bounds) and
// the calibrated test period, and executes chips — sequentially or fanned
// across a bounded worker pool — with context cancellation.
//
// An Engine is immutable after New and safe for concurrent use.
type Engine struct {
	c        *circuit.Circuit
	plan     *core.Plan
	period   float64
	backend  tester.Backend
	observer core.Observer
	cacheHit bool
}

// runOpts bundles the engine's pluggable pieces for the core flow.
func (e *Engine) runOpts() core.RunOptions {
	return core.RunOptions{Backend: e.backend, Observer: e.observer}
}

// New prepares an Engine for the circuit: it runs the offline flow
// (Prepare) under the configuration assembled from the options and
// calibrates the test period (unless WithPeriod pinned one). Invalid
// option values (non-positive ε, negative worker counts, out-of-range
// quantiles, ...) fail construction with a descriptive error.
//
//	eng, err := effitest.New(c,
//		effitest.WithAlignMode(effitest.AlignHeuristic),
//		effitest.WithEpsilon(0.002),
//		effitest.WithWorkers(8),
//	)
func New(c *Circuit, opts ...Option) (*Engine, error) {
	return NewCtx(context.Background(), c, opts...)
}

// defaultSettings is the option-resolution baseline shared by NewCtx and
// SummarizeOptions: the paper-aligned flow defaults plus the T2 period
// calibration (q = 0.8413 over 2000 chips).
func defaultSettings() engineSettings {
	return engineSettings{
		cfg:        core.DefaultConfig(),
		quantile:   0.8413,
		calibChips: 2000,
	}
}

// OptionsSummary describes what an option list resolves to, without running
// any preparation. Fleet registries use it to key live engines before the
// expensive construction work happens.
type OptionsSummary struct {
	// Config is the resolved flow configuration.
	Config Config
	// Fingerprint is a stable hash of every setting that shapes the
	// engine's numbers: the flow configuration (Workers excluded — the
	// worker count never changes an outcome) and the period policy (pinned
	// period, or calibration quantile and chip count). Execution knobs
	// (WithWorkers, WithPlanCache) are deliberately excluded: engines
	// differing only in those produce identical results. WithBackend and
	// WithObserver are excluded too, but they are baked into a constructed
	// engine — callers deduplicating engines by Fingerprint must not share
	// them (see HasBackend/HasObserver).
	Fingerprint string
	// HasPlan reports a WithPlan option: the supplied artifact, not the
	// resolved options, then governs the flow, so such engines must not be
	// deduplicated by Fingerprint.
	HasPlan bool
	// HasBackend / HasObserver report a custom measurement transport or
	// event sink. Both are baked into the engine at construction, so an
	// engine built with either must not be served to callers that did not
	// supply it (a fleet registry constructs such engines caller-private).
	HasBackend  bool
	HasObserver bool
	// PlanCacheDir is the WithPlanCache directory, if any.
	PlanCacheDir string
}

// SummarizeOptions resolves the option list over the engine defaults and
// reports the resulting configuration and its fingerprint.
func SummarizeOptions(opts ...Option) OptionsSummary {
	s := defaultSettings()
	for _, o := range opts {
		o(&s)
	}
	// Canonicalize the period policy before hashing: only the active arm's
	// values matter (WithPeriodQuantile after WithPeriod leaves a stale
	// period behind, and vice versa), so zero the inactive arm to keep
	// equivalent option lists on one fingerprint.
	period, quantile, calib := s.period, s.quantile, s.calibChips
	if s.periodSet {
		quantile, calib = 0, 0
	} else {
		period = 0
	}
	h := sha256.New()
	fmt.Fprintf(h, "effitest-options|config:%s|periodSet:%t|period:%v|quantile:%v|calib:%d",
		core.ConfigFingerprint(s.cfg), s.periodSet, period, quantile, calib)
	return OptionsSummary{
		Config:       s.cfg,
		Fingerprint:  hex.EncodeToString(h.Sum(nil)),
		HasPlan:      s.planIsSet,
		HasBackend:   s.backend != nil,
		HasObserver:  s.observer != nil,
		PlanCacheDir: s.cacheDir,
	}
}

// NewCtx is New with cancellation of the construction work: both the
// offline Prepare (checked between path-selection groups and offline
// stages) and the period calibration (a Monte-Carlo sweep over thousands
// of chips) abort promptly when the context is cancelled.
func NewCtx(ctx context.Context, c *Circuit, opts ...Option) (*Engine, error) {
	s := defaultSettings()
	for _, o := range opts {
		o(&s)
	}
	if s.periodSet {
		if math.IsNaN(s.period) || math.IsInf(s.period, 0) || s.period <= 0 {
			return nil, fmt.Errorf("effitest: test period must be positive, got %v", s.period)
		}
	} else {
		if math.IsNaN(s.quantile) || s.quantile <= 0 || s.quantile >= 1 {
			return nil, fmt.Errorf("effitest: period quantile must be in (0, 1), got %v", s.quantile)
		}
		if s.calibChips <= 0 {
			return nil, fmt.Errorf("effitest: period-quantile chip count must be positive, got %d", s.calibChips)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, cacheHit, err := resolvePlan(ctx, c, &s)
	if err != nil {
		return nil, err
	}
	period := s.period
	if !s.periodSet {
		period, err = yield.PeriodQuantileCtx(ctx, c,
			rng.Seed(plan.Cfg.Seed, "engine-period", c.Name), s.calibChips, s.quantile, plan.Cfg.Workers)
		if err != nil {
			return nil, err
		}
	}
	e := &Engine{c: c, plan: plan, period: period, backend: s.backend, observer: s.observer, cacheHit: cacheHit}
	if e.observer != nil {
		e.observer.Observe(core.PrepareDoneEvent{
			Circuit:  c.Name,
			Groups:   len(plan.Groups),
			Tested:   plan.NumTested(),
			Batches:  len(plan.Batches),
			Duration: plan.PrepDuration,
			CacheHit: cacheHit,
		})
	}
	return e, nil
}

// resolvePlan produces the engine's plan by precedence: an explicit
// WithPlan artifact, then a WithPlanCache lookup (preparing and storing on
// a miss), then a plain context-aware Prepare. It reports whether the
// expensive Prepare was skipped.
func resolvePlan(ctx context.Context, c *Circuit, s *engineSettings) (*core.Plan, bool, error) {
	if s.planIsSet {
		if s.plan == nil {
			return nil, false, fmt.Errorf("effitest: WithPlan(nil)")
		}
		// Shallow-copy the supplied plan: the engine owns its plan's Cfg
		// (the worker count below), and the caller may share one loaded
		// artifact across several engines. The deep state (groups, batches,
		// hold bounds) is read-only after Bind, so sharing it is safe.
		pl := *s.plan
		if pl.Circuit == nil {
			// Bind writes the recomputed per-group distributions into the
			// Groups backing array; clone it so an unbound artifact shared
			// across engines is never written through.
			pl.Groups = slices.Clone(pl.Groups)
			if err := pl.Bind(c); err != nil {
				return nil, false, err
			}
		} else if pl.Circuit != c {
			return nil, false, core.ErrChipCircuitMismatch
		}
		// The plan's configuration governs the flow; only the engine's
		// execution knobs (worker count, prediction batch width) apply on
		// top.
		pl.Cfg.Workers = s.cfg.Workers
		pl.Cfg.PredictBatch = s.cfg.PredictBatch
		if err := pl.Cfg.Validate(); err != nil {
			return nil, false, err
		}
		return &pl, true, nil
	}
	if s.cacheDir != "" {
		return core.PrepareCached(ctx, s.cacheDir, c, s.cfg)
	}
	pl, err := core.PrepareCtx(ctx, c, s.cfg)
	return pl, false, err
}

// PlanCacheHit reports whether the engine's plan came from a cache or a
// supplied artifact (true) rather than a fresh Prepare (false).
func (e *Engine) PlanCacheHit() bool { return e.cacheHit }

// CircuitFingerprint returns the content hash of the engine's circuit — the
// circuit half of a fleet-registry or plan-cache key.
func (e *Engine) CircuitFingerprint() (string, error) { return circuit.Fingerprint(e.c) }

// ConfigFingerprint returns the hash of the engine's Prepare-relevant flow
// configuration (Workers excluded) — the configuration half of the
// plan-cache key. Fleet registries key on SummarizeOptions.Fingerprint
// instead, which additionally covers the period policy: two engines can
// share a ConfigFingerprint (and therefore a cached plan) while being
// distinct registry entries with different calibrated periods.
func (e *Engine) ConfigFingerprint() string { return core.ConfigFingerprint(e.plan.Cfg) }

// Circuit returns the engine's circuit.
func (e *Engine) Circuit() *Circuit { return e.c }

// Plan returns the prepared offline plan (groups, batches, hold bounds).
func (e *Engine) Plan() *Plan { return e.plan }

// Config returns the engine's flow configuration.
func (e *Engine) Config() Config { return e.plan.Cfg }

// Period returns the engine's test clock period Td in ns.
func (e *Engine) Period() float64 { return e.period }

// RunChip executes the online flow on one chip at the engine's period,
// against the engine's measurement backend. The context is checked on
// every tester iteration, so cancellation aborts promptly with the
// context's error.
func (e *Engine) RunChip(ctx context.Context, ch *Chip) (*ChipOutcome, error) {
	return e.plan.RunChipOpts(ctx, ch, e.period, e.runOpts())
}

// RunChipAt is RunChip at an explicit test period.
func (e *Engine) RunChipAt(ctx context.Context, ch *Chip, Td float64) (*ChipOutcome, error) {
	return e.plan.RunChipOpts(ctx, ch, Td, e.runOpts())
}

// RunChipObserved is RunChip with an additional event sink for this call
// only: obs receives the chip's flow events alongside any observer baked
// into the engine at construction. This is how a service layer attaches
// process-wide instrumentation (e.g. a metrics sink) to engines that are
// shared across callers — the engine itself stays immutable, so registry
// deduplication is unaffected. A nil obs is equivalent to RunChip.
func (e *Engine) RunChipObserved(ctx context.Context, ch *Chip, obs Observer) (*ChipOutcome, error) {
	opts := e.runOpts()
	opts.Observer = fanoutObserver(opts.Observer, obs)
	return e.plan.RunChipOpts(ctx, ch, e.period, opts)
}

// fanoutObserver merges two optional observers into one sink.
func fanoutObserver(a, b core.Observer) core.Observer {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return core.ObserverFunc(func(e core.Event) {
		a.Observe(e)
		b.Observe(e)
	})
}

// RunChips fans the chips across the engine's worker pool (WithWorkers) and
// streams one ChipResult per chip — outcome or per-chip error, plus index —
// strictly in input order. Outcomes are bit-identical to a sequential loop
// of RunChip calls. The sequence is single-use; breaking out of the range
// stops the remaining chips and releases the workers. Cancelling the
// context aborts in-flight chips promptly, and the remaining results carry
// the context's error.
func (e *Engine) RunChips(ctx context.Context, chips []*Chip) iter.Seq[ChipResult] {
	return e.plan.RunChipsOpts(ctx, chips, e.period, e.plan.Cfg.Workers, e.runOpts())
}

// RunChipsAt is RunChips at an explicit test period.
func (e *Engine) RunChipsAt(ctx context.Context, chips []*Chip, Td float64) iter.Seq[ChipResult] {
	return e.plan.RunChipsOpts(ctx, chips, Td, e.plan.Cfg.Workers, e.runOpts())
}

// Stream executes the online flow over an unbounded chip source — a
// generator, a socket feed, a directory walk — pulling chips on demand,
// fanning them across the worker pool and streaming results in input
// order. The population is never materialized: memory stays bounded by a
// hard window of 3× the worker count regardless of how many chips flow
// through.
//
// Breaking out of the range stops the source and releases the workers.
// Cancelling the context stops pulling new chips (an unbounded source can
// never be drained), so the stream ends after the chips already being
// executed finish — promptly even when the source itself is blocked
// mid-pull. RunChips is the slice adapter over this core, with the one
// extra guarantee a finite population affords: exactly len(chips) results
// even under cancellation.
func (e *Engine) Stream(ctx context.Context, chips iter.Seq[*Chip]) iter.Seq[ChipResult] {
	return e.plan.Stream(ctx, chips, e.period, e.plan.Cfg.Workers, e.runOpts())
}

// StreamAt is Stream at an explicit test period.
func (e *Engine) StreamAt(ctx context.Context, chips iter.Seq[*Chip], Td float64) iter.Seq[ChipResult] {
	return e.plan.Stream(ctx, chips, Td, e.plan.Cfg.Workers, e.runOpts())
}

// RunChipsAll collects the full stream, returning one outcome per chip (in
// input order) or the lowest-index per-chip error.
func (e *Engine) RunChipsAll(ctx context.Context, chips []*Chip) ([]*ChipOutcome, error) {
	return e.plan.RunChipsAllOpts(ctx, chips, e.period, e.plan.Cfg.Workers, e.runOpts())
}

// Yield runs the full flow on every chip at the engine's period and
// aggregates yield and tester cost across the worker pool.
func (e *Engine) Yield(ctx context.Context, chips []*Chip) (ProposedStats, error) {
	return yield.ProposedOpts(ctx, e.plan, chips, e.period, e.runOpts())
}

// YieldAt is Yield at an explicit test period.
func (e *Engine) YieldAt(ctx context.Context, chips []*Chip, Td float64) (ProposedStats, error) {
	return yield.ProposedOpts(ctx, e.plan, chips, Td, e.runOpts())
}

// SampleChips manufactures n chips of the engine's circuit on the worker
// pool, deterministically in (seed, index).
func (e *Engine) SampleChips(ctx context.Context, seed int64, n int) ([]*Chip, error) {
	return tester.SampleChipsCtx(ctx, e.c, seed, n, e.plan.Cfg.Workers)
}

// SampleChipRange manufactures the n chips with manufacturing indices
// [first, first+n) of the seed-keyed population — exactly the chips
// SampleChips(ctx, seed, first+n) would return at those positions, since
// chip i depends only on (seed, i). Sharded fleet execution uses this to
// hand each node a contiguous slice of one population.
func (e *Engine) SampleChipRange(ctx context.Context, seed int64, first, n int) ([]*Chip, error) {
	if first < 0 {
		return nil, fmt.Errorf("effitest: chip range start must be non-negative, got %d", first)
	}
	return tester.SampleChipRangeCtx(ctx, e.c, seed, first, n, e.plan.Cfg.Workers)
}
