// Golden-corpus conformance suite: executes the declarative scenario matrix
// (circuits × alignment modes × ε × seeds, plus the experiment runners in
// reduced-sample mode) and diffs each run's canonical snapshot against
// testdata/golden/ with per-field tolerances.
//
// Regenerate the corpus after an intentional numeric change with
//
//	EFFITEST_UPDATE_GOLDEN=1 go test .
//
// and review the golden diffs like any other code change. Heavy scenarios
// (Table-1 circuits, Monte-Carlo experiment runners) are skipped under
// `go test -short`; the tiny64 scenarios always run.
package effitest_test

import (
	"context"
	"os"
	"runtime"
	"testing"
	"time"

	"effitest"
	"effitest/internal/conformance"
)

const goldenDir = "testdata/golden"

func updateGolden() bool { return os.Getenv("EFFITEST_UPDATE_GOLDEN") != "" }

func TestConformanceGolden(t *testing.T) {
	for _, sc := range conformance.DefaultMatrix() {
		t.Run(sc.Name(), func(t *testing.T) {
			if sc.Heavy && testing.Short() {
				t.Skip("heavy scenario skipped in -short mode")
			}
			snap, err := conformance.Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			path := conformance.GoldenPath(goldenDir, sc)
			if updateGolden() {
				if err := snap.WriteFile(path); err != nil {
					t.Fatal(err)
				}
				t.Logf("golden updated: %s", path)
				return
			}
			want, err := conformance.LoadSnapshot(path)
			if err != nil {
				t.Fatalf("no golden for %s (%v)\nregenerate with: EFFITEST_UPDATE_GOLDEN=1 go test .", sc.Name(), err)
			}
			if diffs := conformance.Diff(snap, want); len(diffs) > 0 {
				t.Errorf("snapshot deviates from %s (%d fields):\n%s", path, len(diffs), conformance.FormatDiffs(diffs))
			}
		})
	}
}

// TestConformanceInvariants runs pipeline scenarios and asserts the
// structural guarantees of the paper on the live plan and outcomes:
// conflict-free batches (exclusive pairs never co-scheduled), configured
// buffer values on-lattice inside their ranges, tested windows below ε.
func TestConformanceInvariants(t *testing.T) {
	for _, sc := range conformance.DefaultMatrix() {
		if sc.Kind != conformance.KindPipeline {
			continue
		}
		t.Run(sc.Name(), func(t *testing.T) {
			if sc.Heavy && testing.Short() {
				t.Skip("heavy scenario skipped in -short mode")
			}
			res, err := conformance.RunPipeline(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			plan := res.Engine.Plan()
			if v := conformance.PlanViolations(plan); len(v) > 0 {
				t.Errorf("plan violations:\n%v", v)
			}
			for i, out := range res.Outs {
				if v := conformance.OutcomeViolations(plan, out); len(v) > 0 {
					t.Errorf("chip %d violations:\n%v", i, v)
				}
			}
		})
	}
}

// metamorphicResult runs the tiny64 pipeline once and hands back the live
// engine and chips for the metamorphic sweeps below.
func metamorphicResult(t *testing.T) *conformance.PipelineResult {
	t.Helper()
	sc := conformance.Scenario{
		Kind: conformance.KindPipeline, Circuit: "tiny64",
		GenSeed: 1, Align: effitest.AlignHeuristic, Eps: 0.002, Seed: 1,
		Chips: 24, ChipSeed: 101, Quantile: 0.8413, CalibChips: 300,
	}
	p := effitest.NewProfile("tiny64", 64, 640, 6, 72)
	sc.Custom = &p
	res, err := conformance.RunPipeline(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestYieldMonotoneInPeriod sweeps the test period around the calibrated T2
// and requires the flow's yield to be non-decreasing in the period — the
// monotonicity the companion statistical-prediction work relies on. A
// longer period only loosens the setup constraints of Eqs. 15–18.
func TestYieldMonotoneInPeriod(t *testing.T) {
	res := metamorphicResult(t)
	ctx := context.Background()
	base := res.Engine.Period()
	prevYield := -1.0
	prevT := 0.0
	for _, f := range []float64{0.94, 0.97, 1.0, 1.03, 1.06, 1.12} {
		T := base * f
		st, err := res.Engine.YieldAt(ctx, res.Chips, T)
		if err != nil {
			t.Fatal(err)
		}
		if st.Yield < prevYield {
			t.Errorf("yield not monotone in period: %.4f at T=%.4f < %.4f at T=%.4f",
				st.Yield, T, prevYield, prevT)
		}
		prevYield, prevT = st.Yield, T
	}
}

// TestSmallerEpsilonNeverWorsens halves ε repeatedly on a fixed circuit and
// chip population and requires that (a) the flow's yield never decreases —
// tighter measured windows can only improve the configuration — and (b) the
// average tester iterations never decrease — narrower termination windows
// cost frequency steps.
func TestSmallerEpsilonNeverWorsens(t *testing.T) {
	ctx := context.Background()
	prevYield, prevIters := -1.0, -1.0
	for _, eps := range []float64{0.016, 0.008, 0.004, 0.002} {
		scenario := conformance.Scenario{
			Kind: conformance.KindPipeline, Circuit: "tiny64",
			GenSeed: 1, Align: effitest.AlignHeuristic, Eps: eps, Seed: 1,
			Chips: 24, ChipSeed: 101, Quantile: 0.8413, CalibChips: 300,
		}
		p := effitest.NewProfile("tiny64", 64, 640, 6, 72)
		scenario.Custom = &p
		res, err := conformance.RunPipeline(ctx, scenario)
		if err != nil {
			t.Fatal(err)
		}
		y, it := res.Snap.Pipeline.Yield, res.Snap.Pipeline.AvgIterations
		if y < prevYield {
			t.Errorf("eps %g worsened yield: %.4f < %.4f", eps, y, prevYield)
		}
		if it < prevIters {
			t.Errorf("eps %g lowered avg iterations: %.1f < %.1f — termination windows not driving cost", eps, it, prevIters)
		}
		prevYield, prevIters = y, it
	}
}

// TestConformanceRunChipsNoGoroutineLeak breaks out of an Engine.RunChips
// stream early and verifies the worker pool fully drains.
func TestConformanceRunChipsNoGoroutineLeak(t *testing.T) {
	res := metamorphicResult(t)
	before := runtime.NumGoroutine()
	for range res.Engine.RunChips(context.Background(), res.Chips) {
		break
	}
	// Workers unwind asynchronously after the break; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after early break: %d > %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
