// Plan-artifact coverage at the engine level: the content-addressed plan
// cache must skip Prepare on a warm hit, and save→load→run must be
// outcome-identical to in-memory Prepare.
package effitest_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"effitest"
)

func planTestCircuit(t *testing.T) *effitest.Circuit {
	t.Helper()
	c, err := effitest.Generate(effitest.NewProfile("planned", 24, 200, 3, 24), 4)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEnginePlanCacheSkipsPrepare(t *testing.T) {
	c := planTestCircuit(t)
	dir := t.TempDir()
	ctx := context.Background()
	opts := []effitest.Option{
		effitest.WithPeriodQuantile(0.8413, 200),
		effitest.WithPlanCache(dir),
	}

	cold, err := effitest.New(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if cold.PlanCacheHit() {
		t.Fatal("cold engine reported a cache hit")
	}
	warm, err := effitest.New(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.PlanCacheHit() {
		t.Fatal("second engine did not hit the plan cache")
	}
	if cold.Period() != warm.Period() {
		t.Fatalf("period differs: %v vs %v", cold.Period(), warm.Period())
	}

	chips, err := cold.SampleChips(ctx, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := cold.RunChipsAll(ctx, chips)
	if err != nil {
		t.Fatal(err)
	}
	b, err := warm.RunChipsAll(ctx, chips)
	if err != nil {
		t.Fatal(err)
	}
	for i := range chips {
		if !engineOutcomesEqual(a[i], b[i]) {
			t.Fatalf("chip %d: cached-plan outcome differs", i)
		}
	}

	// A different flow configuration must not reuse the entry.
	miss, err := effitest.New(c, append(opts, effitest.WithEpsilon(0.004))...)
	if err != nil {
		t.Fatal(err)
	}
	if miss.PlanCacheHit() {
		t.Fatal("different-ε engine falsely hit the cache")
	}
}

func TestEngineWithLoadedPlan(t *testing.T) {
	c := planTestCircuit(t)
	ctx := context.Background()
	base, err := effitest.New(c, effitest.WithPeriodQuantile(0.8413, 200))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.effiplan")
	if err := effitest.SavePlan(path, base.Plan()); err != nil {
		t.Fatal(err)
	}
	pl, err := effitest.LoadPlan(path, c)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := effitest.New(c, effitest.WithPeriodQuantile(0.8413, 200), effitest.WithPlan(pl))
	if err != nil {
		t.Fatal(err)
	}
	if !eng.PlanCacheHit() {
		t.Fatal("WithPlan engine should report Prepare skipped")
	}
	chips, err := base.SampleChips(ctx, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	a, err := base.RunChipsAll(ctx, chips)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.RunChipsAll(ctx, chips)
	if err != nil {
		t.Fatal(err)
	}
	for i := range chips {
		if !engineOutcomesEqual(a[i], b[i]) {
			t.Fatalf("chip %d: loaded-plan outcome differs from in-memory Prepare", i)
		}
	}

	// Loading against the wrong circuit is a typed error.
	other, err := effitest.Generate(effitest.NewProfile("planned2", 24, 200, 3, 24), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := effitest.LoadPlan(path, other); !errors.Is(err, effitest.ErrPlanCircuitMismatch) {
		t.Fatalf("LoadPlan(other) = %v, want ErrPlanCircuitMismatch", err)
	}
}

// TestEngineWarmCacheStillValidatesOptions pins a regression: option
// validation must not depend on cache state — an invalid worker count is
// rejected on a warm cache exactly as on a cold one.
func TestEngineWarmCacheStillValidatesOptions(t *testing.T) {
	c := planTestCircuit(t)
	dir := t.TempDir()
	if _, err := effitest.New(c, effitest.WithPeriodQuantile(0.8413, 200), effitest.WithPlanCache(dir)); err != nil {
		t.Fatal(err)
	}
	_, err := effitest.New(c,
		effitest.WithPeriodQuantile(0.8413, 200),
		effitest.WithPlanCache(dir),
		effitest.WithWorkers(-1),
	)
	if err == nil {
		t.Fatal("invalid WithWorkers accepted on a warm plan cache")
	}
}

// TestWithPlanSharedAcrossEngines shares one loaded artifact between two
// engines with different worker counts: neither construction may write
// through to the caller's plan or the sibling engine.
func TestWithPlanSharedAcrossEngines(t *testing.T) {
	c := planTestCircuit(t)
	base, err := effitest.New(c, effitest.WithPeriodQuantile(0.8413, 200))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.effiplan")
	if err := effitest.SavePlan(path, base.Plan()); err != nil {
		t.Fatal(err)
	}
	pl, err := effitest.LoadPlan(path, c)
	if err != nil {
		t.Fatal(err)
	}
	pl.Cfg.Workers = 0

	e1, err := effitest.New(c, effitest.WithPeriodQuantile(0.8413, 200), effitest.WithPlan(pl), effitest.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := effitest.New(c, effitest.WithPeriodQuantile(0.8413, 200), effitest.WithPlan(pl), effitest.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if got := e1.Config().Workers; got != 1 {
		t.Fatalf("engine 1 workers = %d after sibling construction, want 1", got)
	}
	if got := e2.Config().Workers; got != 8 {
		t.Fatalf("engine 2 workers = %d, want 8", got)
	}
	if pl.Cfg.Workers != 0 {
		t.Fatalf("caller's plan mutated: Workers = %d, want 0", pl.Cfg.Workers)
	}
}
