package effitest_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"effitest"
)

// engineOutcomesEqual compares everything except wall-clock durations,
// which legitimately vary run to run.
func engineOutcomesEqual(a, b *effitest.ChipOutcome) bool {
	return a.Iterations == b.Iterations &&
		a.ScanBits == b.ScanBits &&
		a.Configured == b.Configured &&
		a.Passed == b.Passed &&
		a.Xi == b.Xi &&
		reflect.DeepEqual(a.X, b.X) &&
		reflect.DeepEqual(a.Bounds.Lo, b.Bounds.Lo) &&
		reflect.DeepEqual(a.Bounds.Hi, b.Bounds.Hi)
}

// TestEngineParallelMatchesSequential runs a Table-1 benchmark profile
// through two engines that differ only in worker count and requires
// byte-identical per-chip outcomes: parallelism must not change what the
// flow computes, only how fast.
func TestEngineParallelMatchesSequential(t *testing.T) {
	profile, ok := effitest.ProfileByName("s9234")
	if !ok {
		t.Fatal("s9234 profile missing")
	}
	c, err := effitest.Generate(profile, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	seq, err := effitest.New(c, effitest.WithWorkers(1), effitest.WithPeriodQuantile(0.8413, 400))
	if err != nil {
		t.Fatal(err)
	}
	par, err := effitest.New(c, effitest.WithWorkers(8), effitest.WithPeriodQuantile(0.8413, 400))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Period() != par.Period() {
		t.Fatalf("period calibration depends on workers: %v != %v", seq.Period(), par.Period())
	}

	chips, err := par.SampleChips(ctx, 7, 12)
	if err != nil {
		t.Fatal(err)
	}
	seqOuts, err := seq.RunChipsAll(ctx, chips)
	if err != nil {
		t.Fatal(err)
	}
	parOuts, err := par.RunChipsAll(ctx, chips)
	if err != nil {
		t.Fatal(err)
	}
	for i := range chips {
		if !engineOutcomesEqual(seqOuts[i], parOuts[i]) {
			t.Fatalf("chip %d: parallel outcome diverged from sequential", i)
		}
	}

	// The aggregated yield statistics must agree exactly as well.
	seqStats, err := seq.Yield(ctx, chips)
	if err != nil {
		t.Fatal(err)
	}
	parStats, err := par.Yield(ctx, chips)
	if err != nil {
		t.Fatal(err)
	}
	seqStats.AvgAlignTime, parStats.AvgAlignTime = 0, 0
	seqStats.AvgConfigTime, parStats.AvgConfigTime = 0, 0
	if seqStats != parStats {
		t.Fatalf("yield stats diverged:\nseq %+v\npar %+v", seqStats, parStats)
	}
}

// TestEngineCancellation checks that a cancelled context aborts chip
// execution promptly with context.Canceled.
func TestEngineCancellation(t *testing.T) {
	c, err := effitest.Generate(effitest.NewProfile("cancel", 40, 400, 4, 48), 7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := effitest.New(c, effitest.WithWorkers(4), effitest.WithPeriodQuantile(0.8413, 200))
	if err != nil {
		t.Fatal(err)
	}
	chips, err := eng.SampleChips(context.Background(), 3, 64)
	if err != nil {
		t.Fatal(err)
	}

	// Already-cancelled context: nothing runs, the error surfaces.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RunChipsAll(ctx, chips); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunChipsAll error = %v, want context.Canceled", err)
	}
	if _, err := eng.RunChip(ctx, chips[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunChip error = %v, want context.Canceled", err)
	}

	// Mid-stream cancellation: cancel after the first result. The stream
	// still yields one result per chip, with the context error on every
	// chip that was aborted, and terminates promptly.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	start := time.Now()
	sawCancel := false
	results := 0
	for r := range eng.RunChips(ctx2, chips) {
		results++
		if r.Index == 0 {
			cancel2()
		}
		if errors.Is(r.Err, context.Canceled) {
			sawCancel = true
		}
	}
	if results != len(chips) {
		t.Fatalf("cancelled stream yielded %d results, want %d", results, len(chips))
	}
	if !sawCancel {
		t.Fatal("no result carried context.Canceled after mid-stream cancel")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled stream took %v to terminate", elapsed)
	}

	// Breaking out of the stream early must release the workers without
	// requiring a cancel.
	broke := 0
	for range eng.RunChips(context.Background(), chips) {
		broke++
		break
	}
	if broke != 1 {
		t.Fatalf("break consumed %d results", broke)
	}
}

// TestEngineOptions checks that functional options land in the engine's
// configuration.
func TestEngineOptions(t *testing.T) {
	c, err := effitest.Generate(effitest.NewProfile("opts", 24, 200, 3, 24), 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := effitest.New(c,
		effitest.WithAlignMode(effitest.AlignOff),
		effitest.WithConfigureMode(effitest.ConfigureMILP),
		effitest.WithEpsilon(0.01),
		effitest.WithSeed(42),
		effitest.WithWorkers(3),
		effitest.WithMaxBatch(8),
		effitest.WithSlotFilling(false),
		effitest.WithHoldYield(0.95),
		effitest.WithHoldSamples(120),
		effitest.WithTesterResolution(1e-3),
		effitest.WithPeriod(1.25),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := eng.Config()
	if cfg.AlignMode != effitest.AlignOff || cfg.ConfigMode != effitest.ConfigureMILP {
		t.Fatalf("solver modes not applied: %+v", cfg)
	}
	if cfg.Eps != 0.01 || cfg.Seed != 42 || cfg.Workers != 3 || cfg.MaxBatch != 8 {
		t.Fatalf("scalar options not applied: %+v", cfg)
	}
	if cfg.FillSlots || cfg.HoldYield != 0.95 || cfg.HoldSamples != 120 || cfg.TesterResolution != 1e-3 {
		t.Fatalf("flow options not applied: %+v", cfg)
	}
	if eng.Period() != 1.25 {
		t.Fatalf("period = %v, want pinned 1.25", eng.Period())
	}

	// WithConfig serves as a base layer; later options still win.
	base := effitest.DefaultConfig()
	base.Eps = 0.2
	eng2, err := effitest.New(c,
		effitest.WithConfig(base),
		effitest.WithEpsilon(0.05),
		effitest.WithPeriod(1.0),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng2.Config().Eps; got != 0.05 {
		t.Fatalf("later option did not win over WithConfig: eps = %v", got)
	}

	// Mismatched chip -> typed sentinel error.
	other, err := effitest.Generate(effitest.NewProfile("opts2", 24, 200, 3, 24), 5)
	if err != nil {
		t.Fatal(err)
	}
	ch := effitest.SampleChip(other, 1, 0)
	if _, err := eng.RunChip(context.Background(), ch); !errors.Is(err, effitest.ErrChipCircuitMismatch) {
		t.Fatalf("error = %v, want ErrChipCircuitMismatch", err)
	}
}
