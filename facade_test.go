package effitest_test

import (
	"bytes"
	"math"
	"testing"

	"effitest"
)

func TestPublicQuickstartFlow(t *testing.T) {
	profile := effitest.NewProfile("facade", 30, 300, 3, 36)
	c, err := effitest.Generate(profile, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := effitest.Prepare(c, effitest.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumTested() == 0 || plan.NumTested() >= c.NumPaths() {
		t.Fatalf("npt = %d", plan.NumTested())
	}
	td := effitest.PeriodQuantile(c, 9, 400, 0.9)
	chip := effitest.SampleChip(c, 2, 0)
	out, err := plan.RunChip(chip, td)
	if err != nil {
		t.Fatal(err)
	}
	if out.Iterations <= 0 {
		t.Fatal("no tester iterations")
	}
}

func TestPublicFigure2(t *testing.T) {
	arcs := []effitest.Timing{
		{From: 0, To: 1, Setup: 3, Hold: -3},
		{From: 1, To: 2, Setup: 8, Hold: -8},
		{From: 2, To: 3, Setup: 5, Hold: -5},
		{From: 3, To: 0, Setup: 6, Hold: -6},
	}
	min, ok := effitest.MinPeriodUnconstrained(4, arcs)
	if !ok || math.Abs(min-5.5) > 1e-9 {
		t.Fatalf("min period = %v, want 5.5 (paper Figure 2)", min)
	}
	b := effitest.UniformBuffers(4, []int{0, 1, 2, 3}, -4, 4, 0)
	if _, ok := effitest.FeasibleSkews(5.5, arcs, b); !ok {
		t.Fatal("5.5 must be feasible with buffers")
	}
	if _, ok := effitest.FeasibleSkews(5.49, arcs, b); ok {
		t.Fatal("5.49 must be infeasible")
	}
}

func TestPublicNetlistRoundTrip(t *testing.T) {
	c, err := effitest.Generate(effitest.NewProfile("rt", 20, 160, 2, 20), 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := effitest.WriteNetlist(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := effitest.ParseNetlist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPaths() != c.NumPaths() || got.TNominal != c.TNominal {
		t.Fatal("round trip lost data")
	}
}

func TestPublicProfiles(t *testing.T) {
	ps := effitest.Profiles()
	if len(ps) != 8 {
		t.Fatalf("expected 8 benchmark profiles, got %d", len(ps))
	}
	if _, ok := effitest.ProfileByName("pci_bridge32"); !ok {
		t.Fatal("pci_bridge32 missing")
	}
}

func TestPublicBaselines(t *testing.T) {
	c, err := effitest.Generate(effitest.NewProfile("bl", 24, 200, 3, 24), 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := effitest.DefaultConfig()
	chip := effitest.SampleChip(c, 5, 0)
	all := make([]int, c.NumPaths())
	for i := range all {
		all[i] = i
	}
	a1 := effitest.NewATE(chip, cfg.TesterResolution)
	pw, _, err := effitest.PathwiseTest(a1, c, all, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2 := effitest.NewATE(chip, cfg.TesterResolution)
	al, _, err := effitest.MultiplexTest(a2, c, all, effitest.NoHoldBounds, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if al >= pw {
		t.Fatalf("aligned multiplexing (%d) did not beat path-wise (%d)", al, pw)
	}
}

func TestPublicHoldBounds(t *testing.T) {
	c, err := effitest.Generate(effitest.NewProfile("hb", 24, 200, 3, 24), 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := effitest.DefaultConfig()
	cfg.HoldSamples = 100
	hb, err := effitest.ComputeHoldBounds(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if y := effitest.HoldYieldEstimate(c, hb, cfg); y < cfg.HoldYield-1e-9 {
		t.Fatalf("hold yield %v below target", y)
	}
}
