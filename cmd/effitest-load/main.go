// Command effitest-load drives a running effitestd with a swarm of
// concurrent clients and verdicts the daemon's behaviour under overload.
//
// The swarm deliberately mixes well-formed traffic with abuse: campaign
// submissions far past the admission bound, requests with missing or wrong
// bearer tokens, plan uploads over the body cap, and a steady read load on
// the open endpoints. A production-hardened daemon answers every one of
// them with an intentional status — 2xx for served work, 429 (with
// Retry-After) for admission and rate control, 401 for bad credentials,
// 413 for oversized bodies — and never a 5xx, an unbounded queue, or a
// dropped connection.
//
// After the swarm drains, the tool scrapes /metrics and cross-checks the
// daemon's own counters against what the swarm observed from the outside:
// auth failures, 429s (rate-limited + admission-rejected), and per-code
// request totals must line up. The run report is written as JSON (-o) and
// the exit status is the verdict, so CI can gate on it directly.
//
// Usage:
//
//	effitest-load -addr http://127.0.0.1:18097 -token secret \
//	    -clients 2000 -duration 20s -o BENCH_7.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// campaignBody is a deliberately tiny campaign: a 16-FF synthetic circuit
// with 2 chips, so accepted submissions complete in milliseconds and churn
// the admission queue instead of wedging it. Every submission is identical,
// which also exercises the registry's warm plan cache under concurrency.
const campaignBody = `{
  "name": "loadtest",
  "circuit": {"custom": {"name": "lt16", "ffs": 16, "gates": 120, "buffers": 2, "paths": 18}, "gen_seed": 7},
  "config": {"align": "heuristic", "eps": 0.002, "seed": 1, "quantile": 0.8413, "calib_chips": 60},
  "chips": {"seed": 11, "count": 2}
}`

// report is the machine-readable run record (committed as BENCH_<pr>.json
// for the full run, and parsed by nothing — it is for humans and diffs).
type report struct {
	Label      string  `json:"label"`
	Addr       string  `json:"addr"`
	GoVersion  string  `json:"goVersion"`
	NumCPU     int     `json:"numCPU"`
	Clients    int     `json:"clients"`
	DurationS  float64 `json:"duration_s"`
	Requests   int64   `json:"requests_total"`
	Throughput float64 `json:"requests_per_s"`

	// StatusCounts histograms every HTTP status the swarm saw.
	StatusCounts map[string]int64 `json:"status_counts"`
	// TransportErrors counts requests that died without a status line.
	// Oversized uploads may race the server's early 413 against the
	// client's body write; those are tracked separately and tolerated.
	TransportErrors     int64    `json:"transport_errors"`
	OversizedConnRaces  int64    `json:"oversized_conn_races"`
	CampaignsAccepted   int64    `json:"campaigns_accepted"`
	CampaignsThrottled  int64    `json:"campaigns_throttled"`
	LatencyP50Ms        float64  `json:"latency_p50_ms"`
	LatencyP90Ms        float64  `json:"latency_p90_ms"`
	LatencyP99Ms        float64  `json:"latency_p99_ms"`
	LatencyMaxMs        float64  `json:"latency_max_ms"`
	MetricsCrossChecked bool     `json:"metrics_cross_checked"`
	Failures            []string `json:"failures,omitempty"`
	OK                  bool     `json:"ok"`
}

type swarm struct {
	addr, token string
	hc          *http.Client

	statuses  sync.Map // int -> *atomic.Int64
	transport atomic.Int64
	bigRaces  atomic.Int64
	accepted  atomic.Int64
	throttled atomic.Int64

	mu        sync.Mutex
	latencies []float64 // milliseconds
}

func (s *swarm) count(code int) {
	v, _ := s.statuses.LoadOrStore(code, &atomic.Int64{})
	v.(*atomic.Int64).Add(1)
}

func (s *swarm) observe(ms float64) {
	s.mu.Lock()
	s.latencies = append(s.latencies, ms)
	s.mu.Unlock()
}

// do fires one request and returns the status code (0 on transport error).
// The body is fully drained so connections are reused across the swarm.
func (s *swarm) do(method, path, token string, body io.Reader) int {
	req, err := http.NewRequest(method, s.addr+path, body)
	if err != nil {
		s.transport.Add(1)
		return 0
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	t0 := time.Now()
	resp, err := s.hc.Do(req)
	if err != nil {
		s.transport.Add(1)
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.observe(float64(time.Since(t0)) / float64(time.Millisecond))
	s.count(resp.StatusCode)
	return resp.StatusCode
}

// submit posts the tiny campaign and classifies the admission outcome.
func (s *swarm) submit() {
	switch s.do(http.MethodPost, "/v1/campaigns", s.token, strings.NewReader(campaignBody)) {
	case http.StatusAccepted:
		s.accepted.Add(1)
	case http.StatusTooManyRequests:
		s.throttled.Add(1)
	}
}

// oversized uploads one byte past the plan body cap and expects 413. The
// server is allowed to slam the door while the body is still in flight, so
// a transport error here is recorded as a tolerated connection race.
func (s *swarm) oversized(cap int64) {
	req, err := http.NewRequest(http.MethodPost, s.addr+"/v1/plans", io.LimitReader(zeros{}, cap+1))
	if err != nil {
		s.transport.Add(1)
		return
	}
	req.Header.Set("Authorization", "Bearer "+s.token)
	req.ContentLength = cap + 1
	resp, err := s.hc.Do(req)
	if err != nil {
		s.bigRaces.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.count(resp.StatusCode)
}

type zeros struct{}

func (zeros) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8087", "base URL of the effitestd under test")
		token    = flag.String("token", os.Getenv("EFFITESTD_AUTH_TOKEN"), "bearer token for mutating endpoints")
		clients  = flag.Int("clients", 200, "concurrent client goroutines")
		duration = flag.Duration("duration", 5*time.Second, "load duration")
		bodyCap  = flag.Int64("body-cap", 64<<20, "daemon request-body cap the 413 probe must exceed")
		bigN     = flag.Int("oversized-probes", 2, "oversized uploads to fire (expect 413 each)")
		think    = flag.Duration("think", 5*time.Millisecond, "per-client pause between requests")
		label    = flag.String("label", "loadtest", "label recorded in the report")
		out      = flag.String("o", "", "write the JSON report here (default stdout only)")
	)
	flag.Parse()

	s := &swarm{
		addr:  strings.TrimRight(*addr, "/"),
		token: *token,
		hc: &http.Client{
			Timeout: 2 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConns:        *clients,
				MaxIdleConnsPerHost: *clients,
			},
		},
	}

	// One warm-up submission so the first wave of the swarm does not pay
	// (and time) the cold plan construction.
	s.submit()

	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reads := []string{"/stats", "/healthz", "/metrics", "/v1/plans"}
			for n := 0; time.Now().Before(deadline); n++ {
				switch i % 10 {
				case 0, 1, 2: // submit pressure: well past the admission bound
					s.submit()
				case 3: // credential abuse: no token, then a wrong one
					if n%2 == 0 {
						s.do(http.MethodPost, "/v1/campaigns", "", strings.NewReader(campaignBody))
					} else {
						s.do(http.MethodPost, "/v1/plans", "wrong-"+s.token, strings.NewReader("{}"))
					}
				default: // steady read load on the open endpoints. The
					// campaign listing serializes every terminal campaign —
					// O(accepted) bytes per call — so it is sampled, not
					// hammered, or it starves the rest of the swarm.
					if n%16 == 0 {
						s.do(http.MethodGet, "/v1/campaigns", "", nil)
					} else {
						s.do(http.MethodGet, reads[n%len(reads)], "", nil)
					}
				}
				time.Sleep(*think)
			}
		}(i)
	}
	// Oversized probes run beside the swarm, not inside it: each one pushes
	// tens of megabytes and would otherwise crowd out a worker slot.
	for i := 0; i < *bigN; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); s.oversized(*bodyCap) }()
	}
	wg.Wait()

	rep := s.report(*label, *clients, *duration)
	rep.crossCheckMetrics(s)
	rep.verdict()

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	os.Stdout.Write(enc)
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "write report:", err)
			os.Exit(1)
		}
	}
	if !rep.OK {
		os.Exit(1)
	}
}

func (s *swarm) report(label string, clients int, d time.Duration) *report {
	rep := &report{
		Label:        label,
		Addr:         s.addr,
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		Clients:      clients,
		DurationS:    d.Seconds(),
		StatusCounts: map[string]int64{},
	}
	s.statuses.Range(func(k, v any) bool {
		n := v.(*atomic.Int64).Load()
		rep.StatusCounts[strconv.Itoa(k.(int))] = n
		rep.Requests += n
		return true
	})
	rep.Throughput = float64(rep.Requests) / d.Seconds()
	rep.TransportErrors = s.transport.Load()
	rep.OversizedConnRaces = s.bigRaces.Load()
	rep.CampaignsAccepted = s.accepted.Load()
	rep.CampaignsThrottled = s.throttled.Load()

	sort.Float64s(s.latencies)
	if n := len(s.latencies); n > 0 {
		q := func(p float64) float64 { return s.latencies[min(n-1, int(p*float64(n)))] }
		rep.LatencyP50Ms = q(0.50)
		rep.LatencyP90Ms = q(0.90)
		rep.LatencyP99Ms = q(0.99)
		rep.LatencyMaxMs = s.latencies[n-1]
	}
	return rep
}

// crossCheckMetrics scrapes the daemon's /metrics and requires its counters
// to agree with what the swarm observed from the outside. The daemon may
// have served other clients (health probes from the harness script), so
// per-code totals are checked as lower bounds; counters only this swarm can
// move (auth failures, 429 sources) are checked exactly.
func (rep *report) crossCheckMetrics(s *swarm) {
	resp, err := s.hc.Get(s.addr + "/metrics")
	if err != nil {
		rep.Failures = append(rep.Failures, fmt.Sprintf("final /metrics scrape: %v", err))
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		rep.Failures = append(rep.Failures, fmt.Sprintf("final /metrics read: %v", err))
		return
	}

	single := map[string]float64{} // bare-name families
	byCode := map[string]float64{} // http_requests_total summed per code
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndex(line, " ")
		if cut < 0 {
			continue
		}
		name, valstr := line[:cut], line[cut+1:]
		val, err := strconv.ParseFloat(valstr, 64)
		if err != nil {
			rep.Failures = append(rep.Failures, fmt.Sprintf("unparseable metrics line %q", line))
			continue
		}
		if code, ok := requestCode(name); ok {
			byCode[code] += val
		} else if !strings.Contains(name, "{") {
			single[name] = val
		}
	}

	if got, want := single["effitestd_auth_failures_total"], float64(rep.StatusCounts["401"]); got != want {
		rep.Failures = append(rep.Failures, fmt.Sprintf("auth_failures_total %.0f, swarm saw %.0f 401s", got, want))
	}
	throttleSum := single["effitestd_rate_limited_total"] + single["effitestd_admission_rejected_total"]
	if want := float64(rep.StatusCounts["429"]); throttleSum != want {
		rep.Failures = append(rep.Failures, fmt.Sprintf("rate_limited+admission_rejected = %.0f, swarm saw %.0f 429s", throttleSum, want))
	}
	for code, n := range rep.StatusCounts {
		if byCode[code] < float64(n) {
			rep.Failures = append(rep.Failures, fmt.Sprintf("http_requests_total code %s = %.0f < %d swarm-observed", code, byCode[code], n))
		}
	}
	rep.MetricsCrossChecked = true
}

// requestCode extracts NNN from `effitestd_http_requests_total{...,code="NNN"}`.
func requestCode(name string) (string, bool) {
	if !strings.HasPrefix(name, `effitestd_http_requests_total{`) {
		return "", false
	}
	_, rest, ok := strings.Cut(name, `code="`)
	if !ok {
		return "", false
	}
	code, _, ok := strings.Cut(rest, `"`)
	return code, ok
}

// verdict enforces the hardening contract: only intentional statuses, at
// least one of each overload answer actually provoked, and no transport
// failures outside the tolerated oversized-upload race.
func (rep *report) verdict() {
	for code := range rep.StatusCounts {
		switch {
		case strings.HasPrefix(code, "2"), code == "401", code == "413", code == "429":
		default:
			rep.Failures = append(rep.Failures, fmt.Sprintf("unexpected status %s (%d times)", code, rep.StatusCounts[code]))
		}
	}
	if rep.TransportErrors > 0 {
		rep.Failures = append(rep.Failures, fmt.Sprintf("%d requests died without a status", rep.TransportErrors))
	}
	if rep.CampaignsAccepted == 0 {
		rep.Failures = append(rep.Failures, "no campaign was accepted")
	}
	if rep.CampaignsThrottled == 0 {
		rep.Failures = append(rep.Failures, "admission bound was never provoked (no 429)")
	}
	if rep.StatusCounts["401"] == 0 {
		rep.Failures = append(rep.Failures, "auth gate was never provoked (no 401)")
	}
	if rep.StatusCounts["413"] == 0 && rep.OversizedConnRaces == 0 {
		rep.Failures = append(rep.Failures, "body cap was never provoked (no 413)")
	}
	rep.OK = len(rep.Failures) == 0
}
