// Command effcheck runs the golden-corpus conformance suite standalone: it
// executes the scenario matrix (circuits × alignment modes × ε × seeds plus
// the experiment runners in reduced-sample mode), diffs each canonical
// snapshot against testdata/golden/ with per-field tolerances, checks the
// paper's structural invariants on the live outcomes, and compares the
// experiment scenarios against the paper's published values within wide
// tolerance bands.
//
// Usage:
//
//	effcheck                  # run everything, pass/fail table, exit 1 on failure
//	effcheck -short           # skip the heavy (Table-1 circuit) scenarios
//	effcheck -filter tiny64   # run matching scenarios only
//	effcheck -update          # regenerate the golden corpus
//	effcheck -v               # print every out-of-tolerance field
//	effcheck -manifest s.json # scenario matrix derived from a suite manifest
//
// Run it from the repository root (or point -golden at the corpus).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"effitest"
	"effitest/internal/conformance"
)

// timingCollector accumulates the per-chip solver runtime components from
// the flow's typed events: Tt (alignment solves, AlignSolveEvent) and Tp
// (statistical prediction, PredictEvent). Chips run concurrently, so the
// sums are mutex-guarded as the Observer contract requires.
type timingCollector struct {
	mu      sync.Mutex
	align   time.Duration
	predict time.Duration
}

func (tc *timingCollector) Observe(e effitest.Event) {
	switch ev := e.(type) {
	case effitest.AlignSolveEvent:
		tc.mu.Lock()
		tc.align += ev.Duration
		tc.mu.Unlock()
	case effitest.PredictEvent:
		tc.mu.Lock()
		tc.predict += ev.Duration
		tc.mu.Unlock()
	}
}

// cols formats the Tt/Tp table cells in milliseconds.
func (tc *timingCollector) cols() (string, string) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	ms := func(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1e3) }
	return ms(tc.align), ms(tc.predict)
}

func main() {
	var (
		goldenDir    = flag.String("golden", "testdata/golden", "golden corpus directory")
		update       = flag.Bool("update", false, "regenerate golden files instead of diffing")
		short        = flag.Bool("short", false, "skip heavy scenarios (Table-1 circuits, experiment runners)")
		filter       = flag.String("filter", "", "run only scenarios whose name contains this substring")
		verbose      = flag.Bool("v", false, "print every out-of-tolerance field (default: first 8 per scenario)")
		planCache    = flag.String("plan-cache", "", "plan cache directory for pipeline scenarios (2nd invocation skips Prepare)")
		manifestPath = flag.String("manifest", "", "derive the scenario matrix from a suite manifest (see manifest package) instead of the built-in matrix")
	)
	flag.Parse()

	matrix := conformance.DefaultMatrix()
	if *manifestPath != "" {
		var err error
		if matrix, err = manifestScenarios(*manifestPath); err != nil {
			fmt.Fprintln(os.Stderr, "effcheck:", err)
			os.Exit(1)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var ran, passed, failed, skipped int
	var bandRows []string
	bandFailed := false

	// Tt/Tp are the paper's per-chip solver runtime components, summed over
	// the scenario's fleet: alignment solves and statistical prediction.
	fmt.Printf("%-45s %-8s %9s %9s  %s\n", "SCENARIO", "STATUS", "Tt(ms)", "Tp(ms)", "NOTE")
	for _, sc := range matrix {
		name := sc.Name()
		if *filter != "" && !strings.Contains(name, *filter) {
			continue
		}
		if *short && sc.Heavy {
			skipped++
			fmt.Printf("%-45s %-8s %9s %9s  %s\n", name, "skip", "-", "-", "heavy scenario (-short)")
			continue
		}
		sc.PlanCache = *planCache
		tt, tp := "-", "-"
		var tc *timingCollector
		switch sc.Kind {
		case conformance.KindPipeline, conformance.KindBinning, conformance.KindAging:
			tc = &timingCollector{}
			sc.Observer = tc
		}
		ran++
		snap, note, ok := runScenario(ctx, sc, *goldenDir, *update, *verbose)
		if tc != nil {
			tt, tp = tc.cols()
		}
		status := "ok"
		if !ok {
			status = "FAIL"
			failed++
		} else {
			passed++
		}
		if *update && ok {
			status = "updated"
		}
		fmt.Printf("%-45s %-8s %9s %9s  %s\n", name, status, tt, tp, note)
		if snap != nil {
			for _, b := range conformance.PaperBands(snap) {
				bandRows = append(bandRows, b.String())
				if !b.OK() {
					bandFailed = true
				}
			}
		}
	}

	if len(bandRows) > 0 {
		fmt.Printf("\nPAPER TOLERANCE BANDS (reduced-sample mode)\n")
		fmt.Printf("%-22s %10s %10s   %-8s %s\n", "METRIC", "MEASURED", "PAPER", "BAND", "STATUS")
		for _, r := range bandRows {
			fmt.Println(r)
		}
	}

	fmt.Printf("\n%d scenarios run: %d ok, %d failed, %d skipped\n", ran, passed, failed, skipped)
	if failed > 0 || bandFailed {
		os.Exit(1)
	}
}

// runScenario executes one scenario: snapshot, invariant checks, golden
// diff (or regeneration). It returns the computed snapshot, a one-line
// note, and pass/fail.
func runScenario(ctx context.Context, sc conformance.Scenario, goldenDir string, update, verbose bool) (*conformance.Snapshot, string, bool) {
	var snap *conformance.Snapshot
	var violations []string
	var cacheNote string
	if sc.Kind == conformance.KindPipeline || sc.Kind == conformance.KindBinning {
		res, err := conformance.RunPipeline(ctx, sc)
		if err != nil {
			return nil, err.Error(), false
		}
		if res.Engine.PlanCacheHit() {
			cacheNote = "plan cache hit (Prepare skipped); "
		} else if sc.PlanCache != "" {
			cacheNote = "plan cache warmed; "
		}
		snap = res.Snap
		violations = conformance.PlanViolations(res.Engine.Plan())
		for i, out := range res.Outs {
			for _, v := range conformance.OutcomeViolations(res.Engine.Plan(), out) {
				violations = append(violations, fmt.Sprintf("chip %d: %s", i, v))
			}
		}
	} else {
		var err error
		snap, err = conformance.Run(ctx, sc)
		if err != nil {
			return nil, err.Error(), false
		}
	}
	if len(violations) > 0 {
		printBlock("invariant violations", violations, verbose)
		return snap, fmt.Sprintf("%d invariant violations", len(violations)), false
	}

	path := conformance.GoldenPath(goldenDir, sc)
	if update {
		if err := snap.WriteFile(path); err != nil {
			return snap, err.Error(), false
		}
		return snap, cacheNote + "golden written", true
	}
	want, err := conformance.LoadSnapshot(path)
	if err != nil {
		return snap, fmt.Sprintf("missing golden (%v); run with -update", err), false
	}
	diffs := conformance.Diff(snap, want)
	if len(diffs) == 0 {
		return snap, strings.TrimSuffix(cacheNote, "; "), true
	}
	shown := diffs
	if !verbose && len(shown) > 8 {
		shown = shown[:8]
	}
	fmt.Print(conformance.FormatDiffs(shown))
	if len(shown) < len(diffs) {
		fmt.Printf("  ... %d more fields (rerun with -v)\n", len(diffs)-len(shown))
	}
	return snap, fmt.Sprintf("%d fields out of tolerance", len(diffs)), false
}

func printBlock(header string, lines []string, verbose bool) {
	fmt.Printf("  %s:\n", header)
	if !verbose && len(lines) > 8 {
		lines = lines[:8]
	}
	for _, l := range lines {
		fmt.Printf("    %s\n", l)
	}
}
