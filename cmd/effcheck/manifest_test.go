package main

import (
	"os"
	"path/filepath"
	"testing"

	"effitest/internal/conformance"
)

func writeManifest(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "suite.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The committed smoke manifest maps onto one scenario per (circuit × sweep
// point × workload), with the aging sweep collapsing to a single curve
// scenario, and the derived names are stable golden stems.
func TestManifestScenariosSmoke(t *testing.T) {
	scs, err := manifestScenarios("../../examples/suites/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	// 1 circuit × 1 align × 1 eps × 1 seed × 3 workloads.
	if len(scs) != 3 {
		t.Fatalf("derived %d scenarios, want 3: %+v", len(scs), scs)
	}
	wantNames := []string{
		"pipeline_t16_heuristic_eps0.002_seed1",
		"binning_t16_heuristic_eps0.002_seed1",
		"aging_t16_heuristic_eps0.002_seed1",
	}
	for i, sc := range scs {
		if sc.Name() != wantNames[i] {
			t.Errorf("scenario %d named %q, want %q", i, sc.Name(), wantNames[i])
		}
		if sc.Chips != 16 || sc.ChipSeed != 11 {
			t.Errorf("scenario %d chips %d seed %d, want 16/11", i, sc.Chips, sc.ChipSeed)
		}
	}
	if len(scs[1].BinEdges) != 3 {
		t.Errorf("binning scenario lost its edges: %+v", scs[1])
	}
	if len(scs[2].Drifts) != 3 {
		t.Errorf("aging scenario lost its drift sweep: %+v", scs[2])
	}
}

// Sweep defaults collapse to the paper point, and ε 0 resolves to the
// engine's default threshold instead of leaking a zero into the flow.
func TestManifestScenariosDefaults(t *testing.T) {
	path := writeManifest(t, `{
		"format": 1,
		"name": "min",
		"circuits": [{"profile": "s9234"}],
		"workloads": [{"type": "effitest"}],
		"chips": {"seed": 5, "count": 8},
		"execution": {}
	}`)
	scs, err := manifestScenarios(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 {
		t.Fatalf("derived %d scenarios, want 1", len(scs))
	}
	sc := scs[0]
	if sc.Kind != conformance.KindPipeline || sc.Circuit != "s9234" {
		t.Fatalf("wrong scenario: %+v", sc)
	}
	if sc.Eps == 0 {
		t.Fatal("eps 0 leaked through instead of resolving to the paper default")
	}
	if sc.Quantile != 0.8413 || sc.CalibChips != 2000 {
		t.Fatalf("calibration defaults wrong: q=%v calib=%d", sc.Quantile, sc.CalibChips)
	}
}

func TestManifestScenariosRejects(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"netlist circuit", `{
			"format": 1, "name": "x",
			"circuits": [{"netlist": "ff a\nff b\npath a b 1 2\nend"}],
			"workloads": [{"type": "effitest"}],
			"chips": {"seed": 1, "count": 2}, "execution": {}
		}`},
		{"pinned period", `{
			"format": 1, "name": "x",
			"circuits": [{"profile": "s9234"}],
			"sweep": {"period": 1.5},
			"workloads": [{"type": "effitest"}],
			"chips": {"seed": 1, "count": 2}, "execution": {}
		}`},
		{"invalid manifest", `{"format": 1}`},
	}
	for _, c := range cases {
		if _, err := manifestScenarios(writeManifest(t, c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
