package main

import (
	"fmt"

	"effitest"
	"effitest/internal/conformance"
	"effitest/manifest"
	"effitest/workload"
)

// manifestScenarios derives a conformance scenario matrix from a suite
// manifest: the same circuits × align × ε × seeds × workloads cross-product
// the suite CLI executes, rendered as golden-diffable scenarios instead of
// fleet campaigns. This lets a team pin exactly the scenario diversity its
// manifests exercise: `effcheck -manifest suite.json -update` grows the
// corpus, and the plain run keeps it honest.
//
// One structural difference from expansion: an aging-drift workload entry
// becomes ONE KindAging scenario carrying the whole drift sweep (the curve
// is a single golden), not one scenario per drift point.
func manifestScenarios(path string) ([]conformance.Scenario, error) {
	spec, err := manifest.Load(path)
	if err != nil {
		return nil, err
	}
	if spec.Sweep.Period != 0 {
		return nil, fmt.Errorf("manifest %s: pinned sweep.period is not supported by -manifest; use period calibration", path)
	}

	aligns := spec.Sweep.Align
	if len(aligns) == 0 {
		aligns = []string{"heuristic"}
	}
	epses := spec.Sweep.Eps
	if len(epses) == 0 {
		epses = []float64{0}
	}
	seeds := spec.Sweep.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	quantile := spec.Sweep.Quantile
	if quantile == 0 {
		quantile = 0.8413
	}
	calib := spec.Sweep.CalibChips
	if calib == 0 {
		calib = 2000
	}

	var out []conformance.Scenario
	for _, ce := range spec.Circuits {
		base := conformance.Scenario{
			GenSeed:    ce.GenSeed,
			Chips:      spec.Chips.Count,
			ChipSeed:   spec.Chips.Seed,
			Quantile:   quantile,
			CalibChips: calib,
		}
		switch {
		case ce.Profile != "":
			base.Circuit = ce.Profile
		case ce.Custom != nil:
			p := effitest.NewProfile(ce.Custom.Name, ce.Custom.FFs, ce.Custom.Gates, ce.Custom.Buffers, ce.Custom.Paths)
			base.Custom = &p
		default:
			return nil, fmt.Errorf("manifest %s: inline netlist circuits are not supported by -manifest", path)
		}
		for _, al := range aligns {
			align, err := parseAlign(al)
			if err != nil {
				return nil, fmt.Errorf("manifest %s: %w", path, err)
			}
			for _, eps := range epses {
				if eps == 0 {
					eps = effitest.DefaultConfig().Eps
				}
				for _, seed := range seeds {
					for _, we := range spec.Workloads {
						sc := base
						sc.Align = align
						sc.Eps = eps
						sc.Seed = seed
						switch workload.Canonical(we.Type) {
						case workload.TypeEffiTest:
							sc.Kind = conformance.KindPipeline
						case workload.TypeClockBinning:
							sc.Kind = conformance.KindBinning
							sc.BinEdges = append([]float64(nil), we.BinEdges...)
						case workload.TypeAgingDrift:
							sc.Kind = conformance.KindAging
							sc.Drifts = append([]float64(nil), we.Drifts...)
						default:
							return nil, fmt.Errorf("manifest %s: workload %q has no conformance kind", path, we.Type)
						}
						out = append(out, sc)
					}
				}
			}
		}
	}
	return out, nil
}

func parseAlign(name string) (effitest.AlignMode, error) {
	switch name {
	case "", "heuristic":
		return effitest.AlignHeuristic, nil
	case "fast-milp":
		return effitest.AlignFastMILP, nil
	case "paper-ilp":
		return effitest.AlignPaperILP, nil
	case "off":
		return effitest.AlignOff, nil
	}
	return 0, fmt.Errorf("unknown align mode %q", name)
}
