package main

import (
	"context"
	"fmt"

	"effitest"
	"effitest/fleet"
	"effitest/fleet/client"
	"effitest/fleet/coord"
	"effitest/fleet/httpapi"
	"effitest/manifest"
)

// execution is the resolved run configuration: the manifest's execution
// block with the CLI flags layered on top.
type execution struct {
	target  string // local | daemon | coord
	daemon  string
	nodes   []string
	workers int
	token   string
}

// resolveExecution merges the manifest's execution defaults with the flag
// overrides. A -daemon or -nodes flag implies its target; an explicit
// -target wins over both.
func resolveExecution(s *manifest.SuiteSpec, target, daemon string, nodes []string, workers int, token string) (execution, error) {
	ex := execution{
		target:  s.Execution.Target,
		daemon:  s.Execution.Daemon,
		nodes:   s.Execution.Nodes,
		workers: s.Execution.Workers,
		token:   token,
	}
	if ex.target == "" {
		ex.target = "local"
	}
	if daemon != "" {
		ex.daemon = daemon
		ex.target = "daemon"
	}
	if len(nodes) > 0 {
		ex.nodes = nodes
		ex.target = "coord"
	}
	if target != "" {
		ex.target = target
	}
	if workers != 0 {
		ex.workers = workers
	}
	switch ex.target {
	case "local":
	case "daemon":
		if ex.daemon == "" {
			return ex, fmt.Errorf("target daemon needs a base URL (-daemon or execution.daemon)")
		}
	case "coord":
		if len(ex.nodes) == 0 {
			return ex, fmt.Errorf("target coord needs node URLs (-nodes or execution.nodes)")
		}
	default:
		return ex, fmt.Errorf("unknown target %q (have local, daemon, coord)", ex.target)
	}
	if ex.target != "local" && s.Backend != "" && s.Backend != "sim" {
		// The validator enforces this for the manifest's own target; flags
		// can re-route execution, so the runner re-checks.
		return ex, fmt.Errorf("backend %q requires local execution, not target %q", s.Backend, ex.target)
	}
	return ex, nil
}

// runSuite executes every expanded campaign in order on the resolved target
// and assembles the suite report. Campaigns run sequentially — the report's
// campaign order is the expansion order, and every number in it is exact,
// so the report bytes are a pure function of (manifest, target correctness),
// not of scheduling.
func runSuite(ctx context.Context, s *manifest.SuiteSpec, camps []manifest.Campaign, ex execution, note func(done, total int, name string)) (*Report, error) {
	if note == nil {
		note = func(int, int, string) {}
	}
	var outs []CampaignReport
	run, cleanup, err := newRunner(ex)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	for i, camp := range camps {
		out, err := run(ctx, camp)
		if err != nil {
			return nil, fmt.Errorf("campaign %q: %w", camp.Request.Name, err)
		}
		outs = append(outs, out)
		note(i+1, len(camps), camp.Request.Name)
	}
	return buildReport(s, outs), nil
}

// runner executes one expanded campaign to a report row.
type runner func(ctx context.Context, camp manifest.Campaign) (CampaignReport, error)

// newRunner builds the target's campaign runner plus its cleanup.
func newRunner(ex execution) (runner, func(), error) {
	switch ex.target {
	case "daemon":
		cl := newClient(ex.daemon, ex.token)
		return func(ctx context.Context, camp manifest.Campaign) (CampaignReport, error) {
			return runOnDaemon(ctx, cl, camp)
		}, func() {}, nil
	case "coord":
		var opts []coord.Option
		if ex.token != "" {
			opts = append(opts, coord.WithAuthToken(ex.token))
		}
		co, err := coord.New(ex.nodes, opts...)
		if err != nil {
			return nil, nil, err
		}
		return func(ctx context.Context, camp manifest.Campaign) (CampaignReport, error) {
			return runOnFleet(ctx, co, camp)
		}, func() {}, nil
	default:
		m, err := fleet.NewManager(fleet.WithWorkers(ex.workers))
		if err != nil {
			return nil, nil, err
		}
		return func(ctx context.Context, camp manifest.Campaign) (CampaignReport, error) {
			return runLocal(ctx, m, camp)
		}, func() { m.Shutdown(context.Background()) }, nil
	}
}

func newClient(base, token string) *client.Client {
	var opts []client.Option
	if token != "" {
		opts = append(opts, client.WithToken(token))
	}
	return client.New(base, opts...)
}

// runLocal executes one campaign in-process on a shared manager. The
// manifest's backend selects the measurement transport: sim (the default),
// fault (the instrumented wrapper, numerically transparent when no faults
// are scheduled), or replay — which runs the campaign twice, once recording
// through the sim backend and once replaying the trace, and reports the
// replayed run.
func runLocal(ctx context.Context, m *fleet.Manager, camp manifest.Campaign) (CampaignReport, error) {
	switch camp.Backend {
	case "", "sim":
		return runLocalSpec(ctx, m, camp, nil)
	case "fault":
		return runLocalSpec(ctx, m, camp, effitest.NewFaultBackend(nil))
	case "replay":
		rec := effitest.NewRecorder(nil)
		if _, err := runLocalSpec(ctx, m, camp, rec); err != nil {
			return CampaignReport{}, fmt.Errorf("recording: %w", err)
		}
		return runLocalSpec(ctx, m, camp, effitest.NewReplayer(rec.Trace()))
	default:
		return CampaignReport{}, fmt.Errorf("unknown backend %q", camp.Backend)
	}
}

func runLocalSpec(ctx context.Context, m *fleet.Manager, camp manifest.Campaign, backend effitest.Backend) (CampaignReport, error) {
	req := camp.Request
	circ, err := req.Circuit.Build()
	if err != nil {
		return CampaignReport{}, err
	}
	opts, err := req.Config.Options()
	if err != nil {
		return CampaignReport{}, err
	}
	if backend != nil {
		opts = append(opts, effitest.WithBackend(backend))
	}
	c, err := m.Submit(fleet.CampaignSpec{
		Name:      req.Name,
		Circuit:   circ,
		Options:   opts,
		ChipSeed:  req.Chips.Seed,
		ChipCount: req.Chips.Count,
		ChipFirst: req.Chips.First,
		Workload:  req.Workload,
		BinEdges:  req.BinEdges,
		Drift:     req.Drift,
	})
	if err != nil {
		return CampaignReport{}, err
	}
	st, err := c.Wait(ctx)
	if err != nil {
		return CampaignReport{}, err
	}
	if st.State != fleet.StateDone {
		return CampaignReport{}, fmt.Errorf("campaign settled %s: %v", st.State, st.Err)
	}
	ws := httpapi.StatusWire(st)
	if ws.Aggregate == nil {
		return CampaignReport{}, fmt.Errorf("settled campaign has no aggregate")
	}
	return reportRow(camp, st.Period, *ws.Aggregate), nil
}

// runOnDaemon executes one campaign against a single effitestd and reads
// back the served aggregate — the identical bytes the local path computes.
func runOnDaemon(ctx context.Context, cl *client.Client, camp manifest.Campaign) (CampaignReport, error) {
	st, err := cl.Submit(ctx, camp.Request)
	if err != nil {
		return CampaignReport{}, err
	}
	fin, err := cl.WaitSettled(ctx, st.ID)
	if err != nil {
		return CampaignReport{}, err
	}
	if fin.State != string(fleet.StateDone) {
		return CampaignReport{}, fmt.Errorf("campaign settled %s: %s", fin.State, fin.Error)
	}
	agg, err := cl.Aggregate(ctx, st.ID)
	if err != nil {
		return CampaignReport{}, err
	}
	return reportRow(camp, fin.Period, agg), nil
}

// runOnFleet shards one campaign across the coordinator's node pool; the
// merged summary is bit-identical to a single-node run by the coordinator's
// own guarantees.
func runOnFleet(ctx context.Context, co *coord.Coordinator, camp manifest.Campaign) (CampaignReport, error) {
	req := camp.Request
	run, err := co.Start(ctx, coord.Spec{
		Name:     req.Name,
		Circuit:  req.Circuit,
		Config:   req.Config,
		Chips:    req.Chips,
		Workload: req.Workload,
		BinEdges: req.BinEdges,
		Drift:    req.Drift,
	})
	if err != nil {
		return CampaignReport{}, err
	}
	sum, err := run.Wait(ctx)
	if err != nil {
		return CampaignReport{}, err
	}
	return reportRow(camp, sum.Period, sum.Aggregate), nil
}
