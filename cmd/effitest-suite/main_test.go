package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"testing"

	"effitest/fleet"
	"effitest/fleet/httpapi"
	"effitest/manifest"
)

const smokePath = "../../examples/suites/smoke.json"

func loadSmoke(t *testing.T) (*manifest.SuiteSpec, []manifest.Campaign) {
	t.Helper()
	spec, err := manifest.Load(smokePath)
	if err != nil {
		t.Fatal(err)
	}
	camps, err := manifest.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	return spec, camps
}

// reportBytes runs the whole suite on the given execution target and
// renders the report to its canonical bytes.
func reportBytes(t *testing.T, ex execution) []byte {
	t.Helper()
	spec, camps := loadSmoke(t)
	rep, err := runSuite(context.Background(), spec, camps, ex, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The expanded campaign list of the committed smoke manifest is pinned
// byte-for-byte: expansion is a pure function of the manifest bytes.
func TestExpandGolden(t *testing.T) {
	_, camps := loadSmoke(t)
	var buf bytes.Buffer
	if err := writeCanonical(&buf, camps); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/golden/smoke-campaigns.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("expanded campaign list diverges from testdata/golden/smoke-campaigns.json\ngot:\n%s", buf.Bytes())
	}
}

// The smoke suite's report is pinned byte-for-byte against the committed
// golden, and is invariant under the worker-pool size: scheduling must
// never leak into report bytes.
func TestSuiteReportGoldenAndWorkerInvariance(t *testing.T) {
	want, err := os.ReadFile("testdata/golden/smoke-report.json")
	if err != nil {
		t.Fatal(err)
	}
	one := reportBytes(t, execution{target: "local", workers: 1})
	if !bytes.Equal(one, want) {
		t.Fatalf("1-worker report diverges from testdata/golden/smoke-report.json\ngot:\n%s", one)
	}
	four := reportBytes(t, execution{target: "local", workers: 4})
	if !bytes.Equal(four, one) {
		t.Fatal("report bytes depend on the worker-pool size")
	}
}

// Running the suite against a loopback effitestd (auth on) yields the
// byte-identical report the in-process runner produces: the wire round-trip
// loses nothing.
func TestSuiteReportLocalVsDaemon(t *testing.T) {
	local := reportBytes(t, execution{target: "local", workers: 2})

	const token = "suite-test-token"
	m, err := fleet.NewManager(fleet.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.New(m, httpapi.WithAuthToken(token)))
	t.Cleanup(func() {
		m.Shutdown(context.Background())
		ts.Close()
	})

	remote := reportBytes(t, execution{target: "daemon", daemon: ts.URL, token: token})
	if !bytes.Equal(remote, local) {
		t.Fatalf("daemon report diverges from local report\nlocal:\n%s\ndaemon:\n%s", local, remote)
	}
}

// Sharding the suite across a three-node fleet yields the byte-identical
// report too — the acceptance bar for the manifest subsystem: histograms
// and aging curves merge exactly, never approximately.
func TestSuiteReportLocalVsFleet(t *testing.T) {
	local := reportBytes(t, execution{target: "local", workers: 2})

	var nodes []string
	for i := 0; i < 3; i++ {
		m, err := fleet.NewManager(fleet.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(httpapi.New(m))
		t.Cleanup(func() {
			m.Shutdown(context.Background())
			ts.Close()
		})
		nodes = append(nodes, ts.URL)
	}

	fleetRep := reportBytes(t, execution{target: "coord", nodes: nodes})
	if !bytes.Equal(fleetRep, local) {
		t.Fatalf("fleet report diverges from local report\nlocal:\n%s\nfleet:\n%s", local, fleetRep)
	}
}

// resolveExecution layers flags over the manifest's execution block with
// the documented precedence, and refuses targets it cannot reach.
func TestResolveExecution(t *testing.T) {
	spec, _ := loadSmoke(t)

	ex, err := resolveExecution(spec, "", "", nil, 0, "")
	if err != nil || ex.target != "local" || ex.workers != 2 {
		t.Fatalf("manifest defaults not honored: %+v, err %v", ex, err)
	}
	ex, err = resolveExecution(spec, "", "http://d:1", nil, 3, "tok")
	if err != nil || ex.target != "daemon" || ex.daemon != "http://d:1" || ex.workers != 3 {
		t.Fatalf("-daemon did not imply daemon target: %+v, err %v", ex, err)
	}
	ex, err = resolveExecution(spec, "", "", []string{"http://n:1"}, 0, "")
	if err != nil || ex.target != "coord" || len(ex.nodes) != 1 {
		t.Fatalf("-nodes did not imply coord target: %+v, err %v", ex, err)
	}
	ex, err = resolveExecution(spec, "local", "http://d:1", nil, 0, "")
	if err != nil || ex.target != "local" {
		t.Fatalf("explicit -target did not win: %+v, err %v", ex, err)
	}
	if _, err := resolveExecution(spec, "daemon", "", nil, 0, ""); err == nil {
		t.Fatal("daemon target without a URL accepted")
	}
	if _, err := resolveExecution(spec, "coord", "", nil, 0, ""); err == nil {
		t.Fatal("coord target without nodes accepted")
	}
	if _, err := resolveExecution(spec, "warp", "", nil, 0, ""); err == nil {
		t.Fatal("unknown target accepted")
	}

	replay := *spec
	replay.Backend = "replay"
	if _, err := resolveExecution(&replay, "", "http://d:1", nil, 0, ""); err == nil {
		t.Fatal("replay backend re-routed to a daemon accepted")
	}
	if _, err := resolveExecution(&replay, "", "", nil, 0, ""); err != nil {
		t.Fatalf("replay backend refused locally: %v", err)
	}
}

// The fault and replay backends are numerically transparent: the suite
// report is byte-identical to the sim backend's for every campaign.
func TestBackendsNumericallyTransparent(t *testing.T) {
	sim := reportBytes(t, execution{target: "local", workers: 2})
	spec, camps := loadSmoke(t)
	for _, backend := range []string{"fault", "replay"} {
		forced := make([]manifest.Campaign, len(camps))
		copy(forced, camps)
		for i := range forced {
			forced[i].Backend = backend
		}
		rep, err := runSuite(context.Background(), spec, forced, execution{target: "local", workers: 2}, nil)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		for i := range rep.Campaigns {
			rep.Campaigns[i].Backend = "sim"
		}
		var buf bytes.Buffer
		if err := writeCanonical(&buf, rep); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), sim) {
			t.Fatalf("%s backend perturbs report bytes\nsim:\n%s\n%s:\n%s", backend, sim, backend, buf.Bytes())
		}
	}
}
