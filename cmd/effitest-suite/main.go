// Command effitest-suite executes a declarative campaign manifest: a
// versioned JSON document describing circuits × config sweeps × workloads
// (effitest, clock-binning, aging-drift), expanded deterministically into
// concrete campaigns and executed in-process, against one effitestd daemon,
// or sharded across a fleet — emitting one canonical suite report whose
// bytes are identical across all three targets.
//
// Usage:
//
//	effitest-suite -manifest suite.json                    # run locally
//	effitest-suite -manifest suite.json -expand-only       # print campaign list
//	effitest-suite -manifest suite.json -daemon http://host:8087
//	effitest-suite -manifest suite.json -nodes http://n1:8087,http://n2:8087
//	effitest-suite -manifest suite.json -out report.json
//
// The manifest's own execution block picks the default target; the flags
// above override it. The report is canonical JSON (two-space indent,
// trailing newline), so committed golden reports diff byte-exactly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"effitest/manifest"
)

func main() {
	var (
		manifestPath = flag.String("manifest", "", "suite manifest JSON file (required)")
		expandOnly   = flag.Bool("expand-only", false, "print the expanded campaign list as canonical JSON and exit")
		target       = flag.String("target", "", "execution target override: local|daemon|coord")
		daemonURL    = flag.String("daemon", "", "effitestd base URL (implies -target daemon)")
		nodes        = flag.String("nodes", "", "comma-separated effitestd base URLs (implies -target coord)")
		workers      = flag.Int("workers", 0, "local worker pool size (0 = manifest setting, then all CPUs)")
		outPath      = flag.String("out", "", "write the suite report to this path (default stdout)")
		token        = flag.String("token", os.Getenv("EFFITESTD_AUTH_TOKEN"),
			"bearer token for daemons running with auth enabled (default $EFFITESTD_AUTH_TOKEN)")
	)
	flag.Parse()

	if *manifestPath == "" {
		fatal(fmt.Errorf("-manifest is required"))
	}
	spec, err := manifest.Load(*manifestPath)
	fatal(err)
	camps, err := manifest.Expand(spec)
	fatal(err)

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		fatal(err)
		defer f.Close()
		out = f
	}

	if *expandOnly {
		fatal(writeCanonical(out, camps))
		return
	}

	ex, err := resolveExecution(spec, *target, *daemonURL, splitNonEmpty(*nodes), *workers, *token)
	fatal(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := runSuite(ctx, spec, camps, ex, progress)
	fatal(err)
	fatal(writeCanonical(out, rep))
}

// progress narrates one finished campaign to stderr, keeping stdout pure
// report bytes.
func progress(done, total int, name string) {
	fmt.Fprintf(os.Stderr, "effitest-suite: [%d/%d] %s\n", done, total, name)
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "effitest-suite:", err)
		os.Exit(1)
	}
}
