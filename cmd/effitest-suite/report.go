package main

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"strings"

	"effitest/fleet/httpapi"
	"effitest/manifest"
	"effitest/workload"
)

// Report is the suite report: one row per expanded campaign in expansion
// order, plus the aging-drift yield curves derived from them. Every field
// is deterministic and exact, and the execution target is deliberately NOT
// recorded — a local run, a daemon run and a fleet run of the same manifest
// must produce byte-identical reports, which is the cross-target
// conformance check the CI suite-smoke job performs.
type Report struct {
	Format    int              `json:"format"`
	Suite     string           `json:"suite"`
	Campaigns []CampaignReport `json:"campaigns"`
	// AgingCurves groups the aging-drift campaigns by sweep point and sorts
	// each group's (drift, yield) samples by drift: yield-vs-drift curves
	// ready to plot.
	AgingCurves []AgingCurve `json:"aging_curves,omitempty"`
}

// CampaignReport is one campaign's outcome.
type CampaignReport struct {
	Name     string `json:"name"`
	Workload string `json:"workload"`
	Backend  string `json:"backend"`
	// Period is the campaign's test period Td in ns (calibrated or pinned).
	Period float64 `json:"period"`
	// Aggregate is the campaign's exact aggregate — for clock-binning
	// campaigns it carries the period-bin histogram.
	Aggregate httpapi.Aggregate `json:"aggregate"`
}

// AgingCurve is one yield-vs-drift curve.
type AgingCurve struct {
	// Group names the sweep point the curve was swept at: the campaign name
	// minus its drift coordinate.
	Group  string       `json:"group"`
	Points []AgingPoint `json:"points"`
}

// AgingPoint is one sample of an aging curve.
type AgingPoint struct {
	Drift float64 `json:"drift"`
	Yield float64 `json:"yield"`
}

// reportRow assembles one campaign's report row from its exact outcome.
func reportRow(camp manifest.Campaign, period float64, agg httpapi.Aggregate) CampaignReport {
	backend := camp.Backend
	if backend == "" {
		backend = "sim"
	}
	return CampaignReport{
		Name:      camp.Request.Name,
		Workload:  workload.Canonical(camp.Request.Workload),
		Backend:   backend,
		Period:    period,
		Aggregate: agg,
	}
}

// buildReport assembles the suite report from the per-campaign rows.
func buildReport(s *manifest.SuiteSpec, rows []CampaignReport) *Report {
	rep := &Report{Format: manifest.FormatVersion, Suite: s.Name, Campaigns: rows}

	// Derive the aging curves: rows of the aging-drift workload, grouped by
	// campaign name with the drift coordinate stripped, in first-appearance
	// (= expansion) order, each curve sorted by drift.
	groups := map[string]int{}
	for _, row := range rows {
		if row.Workload != workload.TypeAgingDrift {
			continue
		}
		name, drift := splitDrift(row.Name)
		i, ok := groups[name]
		if !ok {
			i = len(rep.AgingCurves)
			groups[name] = i
			rep.AgingCurves = append(rep.AgingCurves, AgingCurve{Group: name})
		}
		rep.AgingCurves[i].Points = append(rep.AgingCurves[i].Points, AgingPoint{
			Drift: drift,
			Yield: row.Aggregate.Yield,
		})
	}
	for i := range rep.AgingCurves {
		pts := rep.AgingCurves[i].Points
		sort.Slice(pts, func(a, b int) bool { return pts[a].Drift < pts[b].Drift })
	}
	return rep
}

// splitDrift strips the ",drift=<d>" coordinate Expand renders into aging
// campaign names, returning the group name and the parsed drift.
func splitDrift(name string) (string, float64) {
	i := strings.LastIndex(name, ",drift=")
	if i < 0 {
		return name, 0
	}
	d, err := strconv.ParseFloat(name[i+len(",drift="):], 64)
	if err != nil {
		return name, 0
	}
	return name[:i], d
}

// writeCanonical writes v as canonical report JSON: two-space indent and a
// trailing newline — the same shape every canonical artifact in this repo
// uses, so committed goldens diff byte-exactly.
func writeCanonical(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
