// Command effitest runs the full EffiTest flow on one benchmark circuit and
// prints Table-1-style cost metrics plus yield for the chosen clock period.
//
// Usage:
//
//	effitest -circuit s9234 -chips 100 -seed 1 -quantile 0.8413
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"effitest"
)

func main() {
	var (
		name     = flag.String("circuit", "s9234", "benchmark circuit (see -list)")
		list     = flag.Bool("list", false, "list available benchmark circuits and exit")
		seed     = flag.Int64("seed", 1, "master random seed")
		chips    = flag.Int("chips", 100, "number of simulated chips")
		quantile = flag.Float64("quantile", 0.8413, "clock period as a quantile of the no-tuning critical delay (0.8413 = paper's T2)")
		qchips   = flag.Int("quantile-chips", 2000, "Monte-Carlo chips for the period quantile")
		align    = flag.String("align", "heuristic", "alignment solver: heuristic | fast-milp | paper-ilp | off")
		eps      = flag.Float64("eps", 0, "delay-range termination threshold in ns (0 = default 0.002)")
	)
	flag.Parse()

	if *list {
		for _, p := range effitest.Profiles() {
			fmt.Printf("%-14s ns=%-5d ng=%-6d nb=%-3d np=%d\n", p.Name, p.NumFF, p.NumGates, p.NumBuffers, p.NumPaths)
		}
		return
	}

	profile, ok := effitest.ProfileByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown circuit %q; use -list\n", *name)
		os.Exit(1)
	}

	cfg := effitest.DefaultConfig()
	cfg.Seed = *seed
	if *eps > 0 {
		cfg.Eps = *eps
	}
	switch strings.ToLower(*align) {
	case "heuristic":
		cfg.AlignMode = effitest.AlignHeuristic
	case "fast-milp":
		cfg.AlignMode = effitest.AlignFastMILP
	case "paper-ilp":
		cfg.AlignMode = effitest.AlignPaperILP
	case "off":
		cfg.AlignMode = effitest.AlignOff
	default:
		fmt.Fprintf(os.Stderr, "unknown align mode %q\n", *align)
		os.Exit(1)
	}

	c, err := effitest.Generate(profile, *seed)
	fatal(err)
	fmt.Printf("circuit %s: ns=%d ng=%d nb=%d np=%d  Tnominal=%.4f ns\n",
		c.Name, c.NumFF, c.NumGates(), c.NumBuffers(), c.NumPaths(), c.TNominal)

	plan, err := effitest.Prepare(c, cfg)
	fatal(err)
	fmt.Printf("offline: npt=%d (%.1f%% of np), %d groups, %d batches, Tp=%.2fs\n",
		plan.NumTested(), 100*float64(plan.NumTested())/float64(c.NumPaths()),
		len(plan.Groups), len(plan.Batches), plan.PrepDuration.Seconds())

	td := effitest.PeriodQuantile(c, *seed+1000, *qchips, *quantile)
	fmt.Printf("test period Td=%.4f ns (q%.4g of the no-tuning critical delay)\n", td, *quantile)

	allChips := effitest.SampleChips(c, *seed+2000, *chips)
	st, err := effitest.YieldProposed(plan, allChips, td)
	fatal(err)

	noBuf := effitest.YieldNoBuffer(allChips, td)
	ideal := effitest.YieldIdeal(c, allChips, td)
	fmt.Printf("\nper-chip test cost: ta=%.1f iterations (tv=%.2f per tested path)\n",
		st.AvgIterations, st.AvgIterations/float64(plan.NumTested()))
	fmt.Printf("runtimes: Tt=%.4fs (alignment)  Ts=%.4fs (configuration)\n",
		st.AvgAlignTime.Seconds(), st.AvgConfigTime.Seconds())
	fmt.Printf("\nyield over %d chips at Td:\n", *chips)
	fmt.Printf("  without buffers:        %6.2f%%\n", 100*noBuf)
	fmt.Printf("  proposed (EffiTest):    %6.2f%%  (%.0f%% of chips configured)\n", 100*st.Yield, 100*st.ConfiguredFrac)
	fmt.Printf("  ideal measurement:      %6.2f%%\n", 100*ideal)
	fmt.Printf("  yield drop vs ideal:    %6.2f%%\n", 100*(ideal-st.Yield))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "effitest:", err)
		os.Exit(1)
	}
}
