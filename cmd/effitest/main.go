// Command effitest runs the full EffiTest flow on one benchmark circuit and
// prints Table-1-style cost metrics plus yield for the chosen clock period.
// Chips execute in parallel on a bounded worker pool; Ctrl-C cancels the
// run promptly.
//
// Usage:
//
//	effitest -circuit s9234 -chips 100 -seed 1 -quantile 0.8413 -workers 0
//
// The expensive offline Prepare can be amortized across invocations:
//
//	effitest -circuit s9234 -plan-cache /var/cache/effitest   # 2nd run skips Prepare
//	effitest -circuit s9234 -save-plan s9234.effiplan         # export the artifact
//	effitest -circuit s9234 -load-plan s9234.effiplan         # run from the artifact
//
// (a ".json" extension on -save-plan/-load-plan selects the JSON artifact
// form.)
//
// Profile a run with the standard pprof flags:
//
//	effitest -circuit s38584 -chips 50 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"effitest"
)

func main() {
	var (
		name       = flag.String("circuit", "s9234", "benchmark circuit (see -list)")
		list       = flag.Bool("list", false, "list available benchmark circuits and exit")
		seed       = flag.Int64("seed", 1, "master random seed")
		chips      = flag.Int("chips", 100, "number of simulated chips")
		quantile   = flag.Float64("quantile", 0.8413, "clock period as a quantile of the no-tuning critical delay (0.8413 = paper's T2)")
		qchips     = flag.Int("quantile-chips", 2000, "Monte-Carlo chips for the period quantile")
		align      = flag.String("align", "heuristic", "alignment solver: heuristic | fast-milp | paper-ilp | off")
		eps        = flag.Float64("eps", 0, "delay-range termination threshold in ns (0 = default 0.002)")
		workers    = flag.Int("workers", 0, "worker goroutines for chip execution (0 = all CPUs, 1 = sequential)")
		cacheDir   = flag.String("plan-cache", "", "content-addressed plan cache directory (skips Prepare on a warm hit)")
		savePlan   = flag.String("save-plan", "", "write the prepared plan artifact to this path (.json = JSON form)")
		loadPlan   = flag.String("load-plan", "", "load the plan from this artifact instead of running Prepare")
		progress   = flag.Bool("progress", false, "print per-chip/batch progress to stderr while the fleet runs")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write an allocation profile at exit to this file (go tool pprof)")
	)
	flag.Parse()

	// Profile cleanups run through runCleanups, not bare defers: fatal()
	// exits with os.Exit, which would skip defers and leave a footerless
	// CPU profile — useless exactly when a failing run is being profiled.
	defer runCleanups()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		fatal(err)
		fatal(pprof.StartCPUProfile(f))
		cleanups = append(cleanups, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if *memProfile != "" {
		path := *memProfile
		cleanups = append(cleanups, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "effitest:", err)
				return
			}
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "effitest:", err)
			}
			f.Close()
		})
	}

	if *list {
		for _, p := range effitest.Profiles() {
			fmt.Printf("%-14s ns=%-5d ng=%-6d nb=%-3d np=%d\n", p.Name, p.NumFF, p.NumGates, p.NumBuffers, p.NumPaths)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	profile, ok := effitest.ProfileByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown circuit %q; use -list\n", *name)
		os.Exit(1)
	}

	opts := []effitest.Option{
		effitest.WithSeed(*seed),
		effitest.WithWorkers(*workers),
		effitest.WithPeriodQuantile(*quantile, *qchips),
	}
	if *progress {
		opts = append(opts, effitest.WithObserver(effitest.NewProgressPrinter(os.Stderr)))
	}
	if *eps > 0 {
		opts = append(opts, effitest.WithEpsilon(*eps))
	}
	switch strings.ToLower(*align) {
	case "heuristic":
		opts = append(opts, effitest.WithAlignMode(effitest.AlignHeuristic))
	case "fast-milp":
		opts = append(opts, effitest.WithAlignMode(effitest.AlignFastMILP))
	case "paper-ilp":
		opts = append(opts, effitest.WithAlignMode(effitest.AlignPaperILP))
	case "off":
		opts = append(opts, effitest.WithAlignMode(effitest.AlignOff))
	default:
		fmt.Fprintf(os.Stderr, "unknown align mode %q\n", *align)
		os.Exit(1)
	}

	c, err := effitest.Generate(profile, *seed)
	fatal(err)
	fmt.Printf("circuit %s: ns=%d ng=%d nb=%d np=%d  Tnominal=%.4f ns\n",
		c.Name, c.NumFF, c.NumGates(), c.NumBuffers(), c.NumPaths(), c.TNominal)

	if *cacheDir != "" {
		opts = append(opts, effitest.WithPlanCache(*cacheDir))
	}
	if *loadPlan != "" {
		pl, err := effitest.LoadPlan(*loadPlan, c)
		fatal(err)
		opts = append(opts, effitest.WithPlan(pl))
	}

	eng, err := effitest.NewCtx(ctx, c, opts...)
	fatal(err)
	plan := eng.Plan()
	switch {
	case *loadPlan != "":
		fmt.Printf("offline: plan loaded from %s (Prepare skipped)\n", *loadPlan)
	case eng.PlanCacheHit():
		fmt.Printf("offline: plan cache hit in %s (Prepare skipped)\n", *cacheDir)
	case *cacheDir != "":
		fmt.Printf("offline: plan cache miss; prepared and stored in %s\n", *cacheDir)
	}
	fmt.Printf("offline: npt=%d (%.1f%% of np), %d groups, %d batches, Tp=%.2fs\n",
		plan.NumTested(), 100*float64(plan.NumTested())/float64(c.NumPaths()),
		len(plan.Groups), len(plan.Batches), plan.PrepDuration.Seconds())
	if *savePlan != "" {
		fatal(effitest.SavePlan(*savePlan, plan))
		fmt.Printf("offline: plan artifact written to %s\n", *savePlan)
	}
	fmt.Printf("test period Td=%.4f ns (q%.4g of the no-tuning critical delay)\n", eng.Period(), *quantile)

	allChips, err := eng.SampleChips(ctx, *seed+2000, *chips)
	fatal(err)
	st, err := eng.Yield(ctx, allChips)
	fatal(err)

	noBuf := effitest.YieldNoBuffer(allChips, eng.Period())
	ideal := effitest.YieldIdeal(c, allChips, eng.Period())
	fmt.Printf("\nper-chip test cost: ta=%.1f iterations (tv=%.2f per tested path)\n",
		st.AvgIterations, st.AvgIterations/float64(plan.NumTested()))
	fmt.Printf("runtimes: Tt=%.4fs (alignment)  Ts=%.4fs (configuration)\n",
		st.AvgAlignTime.Seconds(), st.AvgConfigTime.Seconds())
	fmt.Printf("\nyield over %d chips at Td:\n", *chips)
	fmt.Printf("  without buffers:        %6.2f%%\n", 100*noBuf)
	fmt.Printf("  proposed (EffiTest):    %6.2f%%  (%.0f%% of chips configured)\n", 100*st.Yield, 100*st.ConfiguredFrac)
	fmt.Printf("  ideal measurement:      %6.2f%%\n", 100*ideal)
	fmt.Printf("  yield drop vs ideal:    %6.2f%%\n", 100*(ideal-st.Yield))
}

// cleanups holds the profile flushes that must run on every exit path;
// runCleanups is idempotent so both the normal defer and fatal's error
// path may call it.
var (
	cleanups    []func()
	cleanupOnce sync.Once
)

func runCleanups() {
	cleanupOnce.Do(func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	})
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "effitest:", err)
		runCleanups()
		os.Exit(1)
	}
}
