// Command efftables regenerates the paper's evaluation artifacts: Table 1
// (test cost), Table 2 (yield at T1/T2), Figure 7 (yield with enlarged
// random variation) and Figure 8 (iterations per path without statistical
// prediction), printing measured rows next to the paper's published values.
//
// Usage:
//
//	efftables -what table1 -circuits s9234,s13207 -cost-chips 100
//	efftables -what all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"effitest"
	"effitest/internal/exp"
)

func main() {
	var (
		what     = flag.String("what", "all", "table1 | table2 | fig7 | fig8 | all")
		circs    = flag.String("circuits", "all", "comma-separated circuit list or 'all'")
		seed     = flag.Int64("seed", 1, "master random seed")
		cost     = flag.Int("cost-chips", 100, "chips per circuit for Table 1 cost metrics")
		yieldN   = flag.Int("yield-chips", 400, "chips per circuit for yield experiments")
		fig8N    = flag.Int("fig8-chips", 3, "chips per circuit for Figure 8 (tests all np paths per chip)")
		qchips   = flag.Int("quantile-chips", 2000, "chips for the T1/T2 quantile estimates")
		maxBatch = flag.Int("fig8-max-batch", 24, "batch-size cap for the no-prediction runs")
		workers  = flag.Int("workers", 0, "worker goroutines for the Monte-Carlo loops (0 = all CPUs, 1 = sequential)")
		jsonOut  = flag.String("json", "", "also write all measured rows as JSON to this file")
		csvDir   = flag.String("csv", "", "also write table1.csv/table2.csv into this directory")
		planDir  = flag.String("plan-cache", "", "plan cache directory: per-circuit Prepare runs once and is reused on reruns")
		progress = flag.Bool("progress", false, "print per-chip/batch progress to stderr while experiments run")
	)
	flag.Parse()

	cfg := effitest.DefaultExpConfig()
	cfg.Seed = *seed
	cfg.CostChips = *cost
	cfg.YieldChips = *yieldN
	cfg.Fig8Chips = *fig8N
	cfg.QuantileChips = *qchips
	cfg.Fig8MaxBatch = *maxBatch
	cfg.PlanCache = *planDir
	cfg.Core.Seed = *seed
	cfg.Core.Workers = *workers
	if *progress {
		cfg.Observer = effitest.NewProgressPrinter(os.Stderr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	profiles, err := exp.Profiles(splitList(*circs))
	fatal(err)

	report := &exp.Report{Seed: *seed}
	run := func(kind string) {
		switch kind {
		case "table1":
			for _, p := range profiles {
				fmt.Fprintf(os.Stderr, "table1: %s...\n", p.Name)
				r, err := exp.Table1(ctx, p, cfg)
				fatal(err)
				report.Table1 = append(report.Table1, r)
			}
			fmt.Print(exp.FormatTable1(report.Table1))
		case "table2":
			for _, p := range profiles {
				fmt.Fprintf(os.Stderr, "table2: %s...\n", p.Name)
				r, err := exp.Table2(ctx, p, cfg)
				fatal(err)
				report.Table2 = append(report.Table2, r)
			}
			fmt.Print(exp.FormatTable2(report.Table2))
		case "fig7":
			for _, p := range profiles {
				fmt.Fprintf(os.Stderr, "fig7: %s...\n", p.Name)
				r, err := exp.Fig7(ctx, p, cfg)
				fatal(err)
				report.Fig7 = append(report.Fig7, r)
			}
			fmt.Print(exp.FormatFig7(report.Fig7))
		case "fig8":
			for _, p := range profiles {
				fmt.Fprintf(os.Stderr, "fig8: %s...\n", p.Name)
				r, err := exp.Fig8(ctx, p, cfg)
				fatal(err)
				report.Fig8 = append(report.Fig8, r)
			}
			fmt.Print(exp.FormatFig8(report.Fig8))
		default:
			fmt.Fprintf(os.Stderr, "unknown artifact %q\n", kind)
			os.Exit(1)
		}
	}

	if *what == "all" {
		for _, k := range []string{"table1", "table2", "fig7", "fig8"} {
			run(k)
			fmt.Println()
		}
	} else {
		run(*what)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		fatal(err)
		fatal(report.WriteJSON(f))
		fatal(f.Close())
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	if *csvDir != "" {
		if len(report.Table1) > 0 {
			f, err := os.Create(*csvDir + "/table1.csv")
			fatal(err)
			fatal(exp.WriteTable1CSV(f, report.Table1))
			fatal(f.Close())
		}
		if len(report.Table2) > 0 {
			f, err := os.Create(*csvDir + "/table2.csv")
			fatal(err)
			fatal(exp.WriteTable2CSV(f, report.Table2))
			fatal(f.Close())
		}
		fmt.Fprintf(os.Stderr, "wrote CSVs to %s\n", *csvDir)
	}
}

func splitList(s string) []string {
	if s == "" || s == "all" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "efftables:", err)
		os.Exit(1)
	}
}
