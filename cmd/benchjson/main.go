// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so benchmark results can be committed
// (BENCH_<pr>.json) and the performance trajectory tracked across PRs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x . | benchjson -o BENCH_2.json
//
// Standard columns (iterations, ns/op, B/op, allocs/op) and custom
// b.ReportMetric units (tester_iters, chips/s, ...) all land in the
// per-benchmark metrics map. Non-benchmark lines are ignored, so piping the
// whole `go test` output through is fine.
//
// Compare mode checks a fresh report against a committed baseline and exits
// non-zero on a regression — the CI bench-regression smoke job. -metric
// repeats, so one invocation gates several metrics of the same benchmark
// (every gate is evaluated and every failure reported before exiting):
//
//	benchjson -baseline BENCH_8.json -bench FlowChip/s9234 -metric ns/op -metric allocs/op -max-ratio 1.25 fresh.json
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	GoVersion string   `json:"goVersion"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"numCPU"`
	Label     string   `json:"label,omitempty"`
	Results   []Result `json:"results"`
}

// benchLine matches "BenchmarkName-8   123   456 ns/op   7 custom/unit".
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-(\d+))?\s+(\d+)\s+(.*\S)\s*$`)

func parseLine(line string) (Result, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Result{}, false
	}
	r := Result{
		Name:    strings.TrimPrefix(m[1], "Benchmark"),
		Metrics: map[string]float64{},
	}
	if m[2] != "" {
		r.Procs, _ = strconv.Atoi(m[2])
	}
	var err error
	if r.Iterations, err = strconv.ParseInt(m[3], 10, 64); err != nil {
		return Result{}, false
	}
	fields := strings.Fields(m[4])
	if len(fields)%2 != 0 {
		return Result{}, false
	}
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// findMetric looks one benchmark's metric up in a report.
func findMetric(rep *Report, bench, metric string) (float64, error) {
	for _, r := range rep.Results {
		if r.Name != bench {
			continue
		}
		v, ok := r.Metrics[metric]
		if !ok {
			return 0, fmt.Errorf("benchmark %q has no %q metric", bench, metric)
		}
		return v, nil
	}
	return 0, fmt.Errorf("benchmark %q not in report", bench)
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

// compareOne checks one metric of fresh against the baseline: ratio
// fresh/baseline must stay ≤ maxRatio. Returns an error describing the
// regression, or nil.
func compareOne(base, fresh *Report, baselinePath, freshPath, bench, metric string, maxRatio float64) error {
	bv, err := findMetric(base, bench, metric)
	if err != nil {
		return fmt.Errorf("baseline %s: %v", baselinePath, err)
	}
	fv, err := findMetric(fresh, bench, metric)
	if err != nil {
		return fmt.Errorf("fresh %s: %v", freshPath, err)
	}
	if bv <= 0 {
		return fmt.Errorf("baseline %s %s of %s is %v — cannot ratio", bench, metric, baselinePath, bv)
	}
	ratio := fv / bv
	fmt.Printf("benchjson: %s %s: baseline %.0f, fresh %.0f, ratio %.3f (max %.3f)\n",
		bench, metric, bv, fv, ratio, maxRatio)
	if ratio > maxRatio {
		return fmt.Errorf("%s %s regressed: %.3f× the committed baseline (limit %.3f×)", bench, metric, ratio, maxRatio)
	}
	return nil
}

// compare gates every requested metric of one benchmark in a single
// invocation — CI used to shell out once per metric, re-reading both
// reports each time. All gates are evaluated so a run reports every
// regression, not just the first; the returned error joins them.
func compare(baselinePath, freshPath, bench string, metrics []string, maxRatio float64) error {
	base, err := readReport(baselinePath)
	if err != nil {
		return err
	}
	fresh, err := readReport(freshPath)
	if err != nil {
		return err
	}
	var errs []error
	for _, metric := range metrics {
		if err := compareOne(base, fresh, baselinePath, freshPath, bench, metric, maxRatio); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// metricList collects repeated -metric flags.
type metricList []string

func (m *metricList) String() string { return strings.Join(*m, ",") }
func (m *metricList) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	label := flag.String("label", "", "free-form label recorded in the report (e.g. a PR number)")
	baseline := flag.String("baseline", "", "compare mode: committed baseline report to diff the positional fresh report against")
	bench := flag.String("bench", "FlowChip/s9234", "compare mode: benchmark name to check")
	var metrics metricList
	flag.Var(&metrics, "metric", "compare mode: metric to check (repeatable; default ns/op)")
	maxRatio := flag.Float64("max-ratio", 1.25, "compare mode: fail when fresh/baseline exceeds this")
	flag.Parse()

	if *baseline != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: compare mode needs exactly one fresh report argument")
			os.Exit(2)
		}
		if len(metrics) == 0 {
			metrics = metricList{"ns/op"}
		}
		if err := compare(*baseline, flag.Arg(0), *bench, metrics, *maxRatio); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	report := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Label:     *label,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			report.Results = append(report.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(report.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d results -> %s\n", len(report.Results), *out)
}
