// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so benchmark results can be committed
// (BENCH_<pr>.json) and the performance trajectory tracked across PRs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x . | benchjson -o BENCH_2.json
//
// Standard columns (iterations, ns/op, B/op, allocs/op) and custom
// b.ReportMetric units (tester_iters, chips/s, ...) all land in the
// per-benchmark metrics map. Non-benchmark lines are ignored, so piping the
// whole `go test` output through is fine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	GoVersion string   `json:"goVersion"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"numCPU"`
	Label     string   `json:"label,omitempty"`
	Results   []Result `json:"results"`
}

// benchLine matches "BenchmarkName-8   123   456 ns/op   7 custom/unit".
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-(\d+))?\s+(\d+)\s+(.*\S)\s*$`)

func parseLine(line string) (Result, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Result{}, false
	}
	r := Result{
		Name:    strings.TrimPrefix(m[1], "Benchmark"),
		Metrics: map[string]float64{},
	}
	if m[2] != "" {
		r.Procs, _ = strconv.Atoi(m[2])
	}
	var err error
	if r.Iterations, err = strconv.ParseInt(m[3], 10, 64); err != nil {
		return Result{}, false
	}
	fields := strings.Fields(m[4])
	if len(fields)%2 != 0 {
		return Result{}, false
	}
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	label := flag.String("label", "", "free-form label recorded in the report (e.g. a PR number)")
	flag.Parse()

	report := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Label:     *label,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			report.Results = append(report.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(report.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d results -> %s\n", len(report.Results), *out)
}
