package main

import "testing"

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
		name string
		want map[string]float64
	}{
		{
			line: "BenchmarkFlowChip/s9234-8   	      36	  31415926 ns/op	        16.0 tester_iters",
			ok:   true, name: "FlowChip/s9234",
			want: map[string]float64{"ns/op": 31415926, "tester_iters": 16},
		},
		{
			line: "BenchmarkEngineRunChips/workers-all-8         1  2000000 ns/op  32000 chips/s",
			ok:   true, name: "EngineRunChips/workers-all",
			want: map[string]float64{"ns/op": 2e6, "chips/s": 32000},
		},
		{
			line: "BenchmarkPrepare 10 500 ns/op", // no -procs suffix
			ok:   true, name: "Prepare",
			want: map[string]float64{"ns/op": 500},
		},
		{line: "ok  	effitest	61.395s", ok: false},
		{line: "PASS", ok: false},
		{line: "BenchmarkBroken-8 notanumber ns/op", ok: false},
		{line: "", ok: false},
	}
	for _, tc := range cases {
		r, ok := parseLine(tc.line)
		if ok != tc.ok {
			t.Errorf("parseLine(%q) ok = %v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if r.Name != tc.name {
			t.Errorf("parseLine(%q) name = %q, want %q", tc.line, r.Name, tc.name)
		}
		for unit, v := range tc.want {
			if r.Metrics[unit] != v {
				t.Errorf("parseLine(%q) metric %s = %v, want %v", tc.line, unit, r.Metrics[unit], v)
			}
		}
	}
}
