package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
		name string
		want map[string]float64
	}{
		{
			line: "BenchmarkFlowChip/s9234-8   	      36	  31415926 ns/op	        16.0 tester_iters",
			ok:   true, name: "FlowChip/s9234",
			want: map[string]float64{"ns/op": 31415926, "tester_iters": 16},
		},
		{
			line: "BenchmarkEngineRunChips/workers-all-8         1  2000000 ns/op  32000 chips/s",
			ok:   true, name: "EngineRunChips/workers-all",
			want: map[string]float64{"ns/op": 2e6, "chips/s": 32000},
		},
		{
			line: "BenchmarkPrepare 10 500 ns/op", // no -procs suffix
			ok:   true, name: "Prepare",
			want: map[string]float64{"ns/op": 500},
		},
		{line: "ok  	effitest	61.395s", ok: false},
		{line: "PASS", ok: false},
		{line: "BenchmarkBroken-8 notanumber ns/op", ok: false},
		{line: "", ok: false},
	}
	for _, tc := range cases {
		r, ok := parseLine(tc.line)
		if ok != tc.ok {
			t.Errorf("parseLine(%q) ok = %v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if r.Name != tc.name {
			t.Errorf("parseLine(%q) name = %q, want %q", tc.line, r.Name, tc.name)
		}
		for unit, v := range tc.want {
			if r.Metrics[unit] != v {
				t.Errorf("parseLine(%q) metric %s = %v, want %v", tc.line, unit, r.Metrics[unit], v)
			}
		}
	}
}

func writeReport(t *testing.T, path string, results []Result) {
	t.Helper()
	data, err := json.Marshal(Report{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	writeReport(t, base, []Result{{Name: "FlowChip/s9234", Metrics: map[string]float64{"ns/op": 1000}}})

	ok := filepath.Join(dir, "ok.json")
	writeReport(t, ok, []Result{{Name: "FlowChip/s9234", Metrics: map[string]float64{"ns/op": 1200}}})
	if err := compare(base, ok, "FlowChip/s9234", []string{"ns/op"}, 1.25); err != nil {
		t.Fatalf("ratio 1.2 within 1.25 budget, got %v", err)
	}

	bad := filepath.Join(dir, "bad.json")
	writeReport(t, bad, []Result{{Name: "FlowChip/s9234", Metrics: map[string]float64{"ns/op": 1300}}})
	if err := compare(base, bad, "FlowChip/s9234", []string{"ns/op"}, 1.25); err == nil {
		t.Fatal("ratio 1.3 must fail the 1.25 budget")
	}

	if err := compare(base, ok, "FlowChip/missing", []string{"ns/op"}, 1.25); err == nil {
		t.Fatal("missing benchmark must be an error, not a silent pass")
	}
	if err := compare(base, ok, "FlowChip/s9234", []string{"allocs/op"}, 1.25); err == nil {
		t.Fatal("missing metric must be an error, not a silent pass")
	}
}

// TestCompareMultiMetric covers the repeated -metric form: one invocation
// gates several metrics, passes only when all pass, and reports every
// failing gate rather than stopping at the first.
func TestCompareMultiMetric(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	writeReport(t, base, []Result{{Name: "FlowChip/s9234",
		Metrics: map[string]float64{"ns/op": 1000, "allocs/op": 100}}})

	ok := filepath.Join(dir, "ok.json")
	writeReport(t, ok, []Result{{Name: "FlowChip/s9234",
		Metrics: map[string]float64{"ns/op": 1100, "allocs/op": 100}}})
	if err := compare(base, ok, "FlowChip/s9234", []string{"ns/op", "allocs/op"}, 1.25); err != nil {
		t.Fatalf("both metrics within budget, got %v", err)
	}

	bad := filepath.Join(dir, "bad.json")
	writeReport(t, bad, []Result{{Name: "FlowChip/s9234",
		Metrics: map[string]float64{"ns/op": 1400, "allocs/op": 150}}})
	err := compare(base, bad, "FlowChip/s9234", []string{"ns/op", "allocs/op"}, 1.25)
	if err == nil {
		t.Fatal("two regressed metrics must fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "ns/op") || !strings.Contains(msg, "allocs/op") {
		t.Fatalf("joined error must name every failing gate, got %q", msg)
	}

	mixed := filepath.Join(dir, "mixed.json")
	writeReport(t, mixed, []Result{{Name: "FlowChip/s9234",
		Metrics: map[string]float64{"ns/op": 1100, "allocs/op": 150}}})
	err = compare(base, mixed, "FlowChip/s9234", []string{"ns/op", "allocs/op"}, 1.25)
	if err == nil {
		t.Fatal("one regressed metric must fail the whole invocation")
	}
	if !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("error must name the regressed metric, got %q", err)
	}
}
