// Command effitestd is the EffiTest fleet daemon: a long-running HTTP/JSON
// service that holds one shared engine registry (bounded LRU, single-flight
// Prepare, optional on-disk plan cache) and one bounded worker pool, and
// executes named chip campaigns submitted by remote clients — so every
// tester process in a fleet amortizes the paper's offline statistics
// instead of recomputing them.
//
// Usage:
//
//	effitestd -addr :8087 -workers 0 -plan-cache /var/cache/effitest
//
// Submit a campaign, stream its results and fetch the final aggregate:
//
//	curl -s localhost:8087/v1/campaigns -d '{
//	  "name": "lot-42",
//	  "circuit": {"profile": "s9234", "gen_seed": 1},
//	  "config": {"align": "heuristic", "quantile": 0.8413, "calib_chips": 2000},
//	  "chips": {"seed": 7, "count": 100}
//	}'
//	curl -sN localhost:8087/v1/campaigns/c000001/results
//	curl -s  localhost:8087/v1/campaigns/c000001/aggregate
//
// SIGTERM (or Ctrl-C) drains gracefully: in-flight chips finish, chips
// never dispatched resolve as cancelled, and the process exits once the
// pool is idle or -drain-timeout expires (then in-flight chips are
// hard-cancelled, which they notice within one tester iteration).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"effitest/fleet"
	"effitest/fleet/httpapi"
)

func main() {
	var (
		addr     = flag.String("addr", ":8087", "listen address")
		workers  = flag.Int("workers", 0, "shared worker pool size (0 = all CPUs)")
		capacity = flag.Int("registry-capacity", 16, "bounded LRU size of the live-engine registry")
		cacheDir = flag.String("plan-cache", "", "content-addressed plan cache directory backing the registry")
		drain    = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight chips")
	)
	flag.Parse()

	regOpts := []fleet.RegistryOption{fleet.WithCapacity(*capacity)}
	if *cacheDir != "" {
		regOpts = append(regOpts, fleet.WithPlanCacheDir(*cacheDir))
	}
	reg, err := fleet.NewRegistry(regOpts...)
	fatal(err)
	m, err := fleet.NewManager(fleet.WithWorkers(*workers), fleet.WithRegistry(reg))
	fatal(err)

	srv := &http.Server{Addr: *addr, Handler: httpapi.New(m)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "effitestd: listening on %s (workers=%d, registry=%d", *addr, m.Workers(), *capacity)
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, ", plan-cache=%s", *cacheDir)
	}
	fmt.Fprintln(os.Stderr, ")")

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(os.Stderr, "effitestd: draining (budget %s)...\n", *drain)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Settle the campaigns first so result streams end, then close the
	// HTTP listener and wait for connections to wind down.
	if err := m.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "effitestd: drain budget exceeded, in-flight chips cancelled: %v\n", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "effitestd: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "effitestd: drained, exiting")
}

func fatal(err error) {
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "effitestd:", err)
		os.Exit(1)
	}
}
