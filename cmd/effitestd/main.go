// Command effitestd is the EffiTest fleet daemon: a long-running HTTP/JSON
// service that holds one shared engine registry (bounded LRU, single-flight
// Prepare, optional on-disk plan cache) and one bounded worker pool, and
// executes named chip campaigns submitted by remote clients — so every
// tester process in a fleet amortizes the paper's offline statistics
// instead of recomputing them.
//
// Usage:
//
//	effitestd -addr :8087 -workers 0 -plan-cache /var/cache/effitest
//
// Submit a campaign, stream its results and fetch the final aggregate:
//
//	curl -s localhost:8087/v1/campaigns -d '{
//	  "name": "lot-42",
//	  "circuit": {"profile": "s9234", "gen_seed": 1},
//	  "config": {"align": "heuristic", "quantile": 0.8413, "calib_chips": 2000},
//	  "chips": {"seed": 7, "count": 100}
//	}'
//	curl -sN localhost:8087/v1/campaigns/c000001/results
//	curl -s  localhost:8087/v1/campaigns/c000001/aggregate
//
// SIGTERM (or Ctrl-C) drains gracefully: in-flight chips finish, chips
// never dispatched resolve as cancelled, and the process exits once the
// pool is idle or -drain-timeout expires (then in-flight chips are
// hard-cancelled, which they notice within one tester iteration).
//
// With -journal-dir the daemon is crash-safe: every campaign and completed
// chip is fsynced to a write-ahead journal, and a restart on the same
// directory resumes unfinished campaigns — completed chips replay from the
// log bit-identically instead of re-executing (see the README's
// "Durability" section).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"effitest"
	"effitest/fleet"
	"effitest/fleet/httpapi"
	"effitest/fleet/journal"
)

func main() {
	var (
		addr      = flag.String("addr", ":8087", "listen address")
		workers   = flag.Int("workers", 0, "shared worker pool size (0 = all CPUs)")
		capacity  = flag.Int("registry-capacity", 16, "bounded LRU size of the live-engine registry")
		cacheDir  = flag.String("plan-cache", "", "content-addressed plan cache directory backing the registry")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight chips")
		authToken = flag.String("auth-token", os.Getenv("EFFITESTD_AUTH_TOKEN"),
			"bearer token required on mutating endpoints (default $EFFITESTD_AUTH_TOKEN; empty = no auth)")
		maxQueued = flag.Int("max-queued-campaigns", 64,
			"admission bound on queued+running campaigns; excess submits get 429 (0 = unbounded)")
		rateLimit = flag.Float64("rate-limit", 50,
			"per-client request rate limit in requests/sec; over-budget requests get 429 (0 = off)")
		rateBurst  = flag.Int("rate-burst", 100, "per-client rate-limit burst capacity")
		journalDir = flag.String("journal-dir", "",
			"durable campaign journal directory: campaigns and completed chips are fsynced here, and on boot "+
				"unfinished campaigns resume with completed chips replayed, not re-executed (empty = no journal)")
		chipDelay = flag.Duration("chip-delay", 0,
			"artificial pause after each completed chip (recovery drills and load shaping; 0 = off)")
		pprofOn = flag.Bool("pprof", false, "serve /debug/pprof (behind the auth gate when -auth-token is set)")
		logJSON = flag.Bool("log-json", false, "emit request logs as JSON instead of logfmt-style text")
		routeTO = flag.Duration("route-timeout", 30*time.Second,
			"per-route read/write deadline for non-streaming endpoints (0 = none)")
	)
	flag.Parse()

	logOpts := &slog.HandlerOptions{Level: slog.LevelInfo}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, logOpts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, logOpts)
	}
	logger := slog.New(handler)

	regOpts := []fleet.RegistryOption{fleet.WithCapacity(*capacity)}
	if *cacheDir != "" {
		regOpts = append(regOpts, fleet.WithPlanCacheDir(*cacheDir))
	}
	reg, err := fleet.NewRegistry(regOpts...)
	fatal(err)
	metrics := httpapi.NewMetrics()
	obs := effitest.Observer(metrics.Observer())
	if *chipDelay > 0 {
		inner := obs
		d := *chipDelay
		obs = effitest.ObserverFunc(func(e effitest.Event) {
			inner.Observe(e)
			if _, ok := e.(effitest.ChipDoneEvent); ok {
				time.Sleep(d)
			}
		})
	}
	mgrOpts := []fleet.ManagerOption{
		fleet.WithWorkers(*workers),
		fleet.WithRegistry(reg),
		fleet.WithMaxQueuedCampaigns(*maxQueued),
		fleet.WithManagerObserver(obs),
	}
	var jrnl *journal.Journal
	if *journalDir != "" {
		jrnl, err = journal.Open(*journalDir)
		fatal(err)
		mgrOpts = append(mgrOpts, fleet.WithJournal(jrnl))
	}
	m, err := fleet.NewManager(mgrOpts...)
	fatal(err)
	if jrnl != nil {
		// Adopt whatever a previous process left behind before serving:
		// unfinished campaigns re-enter the queue with their completed
		// chips replayed from the log, not re-executed.
		rs, err := m.Recover(httpapi.SpecDecoder(m.Plans()))
		fatal(err)
		if rs.Campaigns > 0 || rs.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "effitestd: journal recovery: %d campaign(s) resumed, %d chip(s) replayed, %d settled, %d skipped\n",
				rs.Campaigns, rs.ChipsReplayed, rs.Settled, rs.Skipped)
		}
	}

	apiOpts := []httpapi.Option{
		httpapi.WithMetrics(metrics),
		httpapi.WithLogger(logger),
		httpapi.WithRouteTimeouts(*routeTO, *routeTO),
	}
	if *authToken != "" {
		apiOpts = append(apiOpts, httpapi.WithAuthToken(*authToken))
	}
	if *rateLimit > 0 {
		apiOpts = append(apiOpts, httpapi.WithRateLimit(*rateLimit, *rateBurst))
	}
	if *pprofOn {
		apiOpts = append(apiOpts, httpapi.WithPprof())
	}

	// Server-wide ReadTimeout/WriteTimeout stay zero on purpose: they would
	// cut long-lived NDJSON result streams and aggregate long-polls. The
	// slowloris surface is covered instead by ReadHeaderTimeout + IdleTimeout
	// here and by the per-route deadlines (-route-timeout) on the routes
	// whose requests and responses are small.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.New(m, apiOpts...),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
		ErrorLog:          slog.NewLogLogger(handler, slog.LevelWarn),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen explicitly (rather than ListenAndServe) so the resolved
	// address is known and logged before serving — ":0" picks a free port,
	// which the kill-and-restart tests rely on.
	ln, err := net.Listen("tcp", *addr)
	fatal(err)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "effitestd: listening on %s (workers=%d, registry=%d, auth=%v, max-queued=%d, rate=%g/s",
		ln.Addr(), m.Workers(), *capacity, *authToken != "", *maxQueued, *rateLimit)
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, ", plan-cache=%s", *cacheDir)
	}
	if *journalDir != "" {
		fmt.Fprintf(os.Stderr, ", journal=%s", *journalDir)
	}
	fmt.Fprintln(os.Stderr, ")")

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(os.Stderr, "effitestd: draining (budget %s)...\n", *drain)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Settle the campaigns first so result streams end, then close the
	// HTTP listener and wait for connections to wind down.
	if err := m.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "effitestd: drain budget exceeded, in-flight chips cancelled: %v\n", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "effitestd: http shutdown: %v\n", err)
	}
	// The journal closes last, after the drain: chips finishing during it
	// were still being appended. Close flushes but never settles — the
	// drain's interrupted campaigns stay resumable on the next boot.
	if jrnl != nil {
		if err := jrnl.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "effitestd: journal close: %v\n", err)
		}
	}
	fmt.Fprintln(os.Stderr, "effitestd: drained, exiting")
}

func fatal(err error) {
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "effitestd:", err)
		os.Exit(1)
	}
}
