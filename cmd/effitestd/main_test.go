package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"effitest/fleet/httpapi"
)

// tiny64Body is the same campaign the CI smoke job and the in-process
// golden corpus pin, plus an idempotency key — its aggregate must diff
// clean against testdata/golden/daemon_tiny64_aggregate.json.
const tiny64Body = `{
	"name": "recovery-drill",
	"key": "recovery-drill",
	"circuit": {"custom": {"name": "tiny64", "ffs": 64, "gates": 640, "buffers": 6, "paths": 72}, "gen_seed": 1},
	"config": {"align": "heuristic", "eps": 0.002, "seed": 1, "quantile": 0.8413, "calib_chips": 300},
	"chips": {"seed": 101, "count": 16}
}`

// daemon wraps a real effitestd process started on a random port.
type daemon struct {
	cmd *exec.Cmd
	url string
}

func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	// The daemon logs "listening on HOST:PORT (..." once the socket is
	// bound; everything after that line is drained so the process never
	// blocks on a full stderr pipe.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, "listening on "); ok {
				if addr, _, ok := strings.Cut(rest, " ("); ok {
					select {
					case addrCh <- addr:
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		d.url = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not report its listen address")
	}
	return d
}

func (d *daemon) post(t *testing.T, body string) (int, httpapi.CampaignStatus) {
	t.Helper()
	resp, err := http.Post(d.url+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st httpapi.CampaignStatus
	if resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

func (d *daemon) get(t *testing.T, path string, v any) {
	t.Helper()
	resp, err := http.Get(d.url + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: HTTP %d: %s", path, resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestKillDashNineRecovery is the acceptance drill for the durable journal,
// against the real binary: boot with -journal-dir, submit the golden tiny64
// campaign, SIGKILL the process mid-campaign, restart on the same
// directory, and require (a) the campaign resumes under its original ID,
// (b) journaled chips replay instead of re-executing, and (c) the final
// aggregate is byte-identical to the committed golden file.
func TestKillDashNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes; skipped in -short")
	}

	bin := filepath.Join(t.TempDir(), "effitestd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dir := t.TempDir()

	// First life: -chip-delay throttles completion to ~8 chips/s so the
	// kill lands mid-campaign deterministically enough.
	d1 := startDaemon(t, bin,
		"-addr", "127.0.0.1:0", "-workers", "2",
		"-journal-dir", dir, "-chip-delay", "120ms")
	code, st := d1.post(t, tiny64Body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur httpapi.CampaignStatus
		d1.get(t, "/v1/campaigns/"+st.ID, &cur)
		if cur.ChipsDone >= 4 {
			if cur.ChipsDone >= cur.ChipsTotal {
				t.Fatalf("campaign finished (%d/%d chips) before the kill; raise -chip-delay",
					cur.ChipsDone, cur.ChipsTotal)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck at %d chips", cur.ChipsDone)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The crash: no drain, no settle record, fsynced chip records only.
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d1.cmd.Wait()

	// Second life: same journal directory, full speed.
	d2 := startDaemon(t, bin,
		"-addr", "127.0.0.1:0", "-workers", "2", "-journal-dir", dir)
	deadline = time.Now().Add(60 * time.Second)
	for {
		var cur httpapi.CampaignStatus
		d2.get(t, "/v1/campaigns/"+st.ID, &cur)
		if cur.State == "done" {
			break
		}
		if cur.State == "failed" || cur.State == "cancelled" {
			t.Fatalf("recovered campaign settled %s: %s", cur.State, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered campaign stuck in %s", cur.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, err := http.Get(d2.url + "/v1/campaigns/" + st.ID + "/aggregate")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate: HTTP %d %v", resp.StatusCode, err)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "daemon_tiny64_aggregate.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("aggregate diverged from golden after kill -9 recovery:\ngot:  %s\nwant: %s", got, want)
	}

	// The recovery must have replayed, not re-executed: every journaled
	// chip (≥4 by the kill gate) comes back from the log, and replayed +
	// executed covers the population exactly once.
	var stats httpapi.Stats
	d2.get(t, "/stats", &stats)
	if stats.CampaignsRecovered != 1 {
		t.Fatalf("campaigns_recovered = %d, want 1", stats.CampaignsRecovered)
	}
	if stats.ChipsReplayed < 4 {
		t.Fatalf("chips_replayed = %d, want >= 4 — recovery re-executed journaled chips", stats.ChipsReplayed)
	}
	if stats.ChipsReplayed+stats.ChipsExecuted != 16 {
		t.Fatalf("replayed %d + executed %d != 16", stats.ChipsReplayed, stats.ChipsExecuted)
	}

	// A client retrying its keyed submit against the new process gets the
	// original campaign back, not a duplicate.
	code, dup := d2.post(t, tiny64Body)
	if code != http.StatusOK || dup.ID != st.ID {
		t.Fatalf("keyed re-submit after restart: HTTP %d id %s, want 200 %s", code, dup.ID, st.ID)
	}

	// And the second life must still drain cleanly.
	if err := d2.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d2.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
