// Command effitest-coord runs one chip campaign across a fleet of
// effitestd daemons: it shards the population over the nodes, pre-pushes
// the plan artifact, streams and merges per-shard results, retries
// transient failures with backoff, and rebalances a dead node's chips onto
// survivors — emitting per-chip results and an aggregate bit-identical to
// a single-node run.
//
// Usage:
//
//	effitest-coord -nodes http://n1:8087,http://n2:8087,http://n3:8087 \
//	  -circuit s9234 -gen-seed 1 -align heuristic -quantile 0.8413 \
//	  -chips 1000 -chip-seed 7
//
// The merged aggregate is written to stdout as canonical JSON — the same
// bytes a single daemon's /aggregate endpoint serves, so the two diff
// exactly. -results streams the merged per-chip NDJSON to stdout instead
// (the aggregate then goes to the -aggregate-out path, if given).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"effitest/fleet/coord"
	"effitest/fleet/httpapi"
)

func main() {
	var (
		nodes     = flag.String("nodes", "", "comma-separated effitestd base URLs (required)")
		circuitN  = flag.String("circuit", "", "Table-1 benchmark profile name")
		custom    = flag.String("custom", "", "synthetic profile name:ffs:gates:buffers:paths")
		netlist   = flag.String("netlist", "", "netlist file to submit inline")
		genSeed   = flag.Int64("gen-seed", 1, "benchmark generator seed")
		align     = flag.String("align", "", "alignment solver: heuristic|fast-milp|paper-ilp|off")
		eps       = flag.Float64("eps", 0, "delay-range termination threshold (0 = paper default)")
		seed      = flag.Int64("seed", 0, "master random seed (0 = paper default)")
		period    = flag.Float64("period", 0, "pinned test period Td in ns (0 = calibrate)")
		quantile  = flag.Float64("quantile", 0, "period calibration quantile (0 = paper default)")
		calib     = flag.Int("calib-chips", 0, "period calibration Monte-Carlo chips")
		chips     = flag.Int("chips", 100, "campaign population size")
		chipSeed  = flag.Int64("chip-seed", 7, "chip population seed")
		chipFirst = flag.Int("chip-first", 0, "population start index (shard of a larger lot)")
		planPath  = flag.String("plan", "", "plan artifact to pre-push to every node")
		name      = flag.String("name", "coord", "campaign name")
		results   = flag.Bool("results", false, "stream merged per-chip NDJSON to stdout")
		aggOut    = flag.String("aggregate-out", "", "write the aggregate JSON to this path (default stdout unless -results)")
		token     = flag.String("token", os.Getenv("EFFITESTD_AUTH_TOKEN"),
			"bearer token for daemons running with auth enabled (default $EFFITESTD_AUTH_TOKEN)")
		attempts = flag.Int("retry-attempts", 5, "max tries per operation before a node is declared dead")
		base     = flag.Duration("retry-base", 100*time.Millisecond, "backoff base delay")
		maxDelay = flag.Duration("retry-max", 5*time.Second, "backoff cap")
		jitter   = flag.Float64("retry-jitter", 0.2, "backoff jitter fraction in [0,1)")
	)
	flag.Parse()

	urls := splitNonEmpty(*nodes)
	if len(urls) == 0 {
		fatal(fmt.Errorf("-nodes is required (comma-separated base URLs)"))
	}
	spec := coord.Spec{
		Name: *name,
		Config: httpapi.ConfigSpec{
			Align: *align, Eps: *eps, Seed: *seed,
			Period: *period, Quantile: *quantile, CalibChips: *calib,
		},
		Chips: httpapi.ChipSpec{Seed: *chipSeed, Count: *chips, First: *chipFirst},
	}
	switch {
	case *netlist != "":
		data, err := os.ReadFile(*netlist)
		fatal(err)
		spec.Circuit = httpapi.CircuitSpec{Netlist: string(data)}
	case *custom != "":
		p, err := parseCustom(*custom)
		fatal(err)
		spec.Circuit = httpapi.CircuitSpec{Custom: p, GenSeed: *genSeed}
	case *circuitN != "":
		spec.Circuit = httpapi.CircuitSpec{Profile: *circuitN, GenSeed: *genSeed}
	default:
		fatal(fmt.Errorf("one of -circuit, -custom or -netlist is required"))
	}
	if *planPath != "" {
		data, err := os.ReadFile(*planPath)
		fatal(err)
		spec.Plan = data
	}

	coOpts := []coord.Option{coord.WithRetryPolicy(coord.RetryPolicy{
		MaxAttempts: *attempts, Base: *base, Max: *maxDelay, Jitter: *jitter,
	})}
	if *token != "" {
		coOpts = append(coOpts, coord.WithAuthToken(*token))
	}
	co, err := coord.New(urls, coOpts...)
	fatal(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	run, err := co.Start(ctx, spec)
	fatal(err)
	fmt.Fprintf(os.Stderr, "effitest-coord: %d chips across %d nodes\n", run.Total(), len(urls))

	if *results {
		enc := json.NewEncoder(os.Stdout)
		for res, err := range run.Results(ctx) {
			fatal(err)
			fatal(enc.Encode(res))
		}
	}
	sum, err := run.Wait(ctx)
	fatal(err)

	fmt.Fprintf(os.Stderr, "effitest-coord: done in %s: %d chips, period %.6g, %d retries, %d rebalanced",
		time.Since(start).Round(time.Millisecond), sum.Chips, sum.Period, sum.Retries, sum.RebalancedChips)
	if len(sum.DeadNodes) > 0 {
		fmt.Fprintf(os.Stderr, ", nodes lost: %s", strings.Join(sum.DeadNodes, ","))
	}
	fmt.Fprintln(os.Stderr)
	for _, a := range sum.Assignments {
		fmt.Fprintf(os.Stderr, "effitest-coord:   shard [%d+%d) -> %s\n", a.First, a.Count, a.Node)
	}

	out := os.Stdout
	if *aggOut != "" {
		f, err := os.Create(*aggOut)
		fatal(err)
		defer f.Close()
		out = f
	} else if *results {
		return // NDJSON went to stdout; no aggregate sink requested
	}
	// Canonical form: the identical bytes a daemon's /aggregate serves.
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	fatal(enc.Encode(sum.Aggregate))
}

// parseCustom parses name:ffs:gates:buffers:paths.
func parseCustom(s string) (*httpapi.CustomProfile, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 5 {
		return nil, fmt.Errorf("-custom wants name:ffs:gates:buffers:paths, got %q", s)
	}
	nums := make([]int, 4)
	for i, p := range parts[1:] {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("-custom field %d: %v", i+2, err)
		}
		nums[i] = n
	}
	return &httpapi.CustomProfile{Name: parts[0], FFs: nums[0], Gates: nums[1], Buffers: nums[2], Paths: nums[3]}, nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "effitest-coord:", err)
		os.Exit(1)
	}
}
