// Command circgen generates benchmark timing-graph netlists and reports
// their statistics.
//
// Usage:
//
//	circgen -circuit s9234 -seed 1 -o s9234.net    # write a netlist
//	circgen -circuit mem_ctrl -stats               # print statistics only
//	circgen -parse s9234.net                       # validate a netlist file
package main

import (
	"flag"
	"fmt"
	"os"

	"effitest"
)

func main() {
	var (
		name  = flag.String("circuit", "s9234", "benchmark circuit name")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("o", "", "write the netlist to this file ('-' = stdout)")
		dot   = flag.String("dot", "", "write a Graphviz DOT view of the timing graph to this file")
		stats = flag.Bool("stats", false, "print circuit statistics")
		parse = flag.String("parse", "", "parse and validate a netlist file instead of generating")
		fp    = flag.Bool("fingerprint", false, "print the circuit content fingerprint (the plan-cache/artifact key component)")
	)
	flag.Parse()

	if *parse != "" {
		f, err := os.Open(*parse)
		fatal(err)
		defer f.Close()
		c, err := effitest.ParseNetlist(f)
		fatal(err)
		fmt.Printf("%s: valid netlist (ns=%d ng=%d nb=%d np=%d)\n",
			*parse, c.NumFF, c.NumGates(), c.NumBuffers(), c.NumPaths())
		if *fp {
			printFingerprint(c)
		}
		return
	}

	profile, ok := effitest.ProfileByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown circuit %q\n", *name)
		os.Exit(1)
	}
	c, err := effitest.Generate(profile, *seed)
	fatal(err)

	if *stats || (*out == "" && *dot == "" && !*fp) {
		printStats(c)
	}
	if *fp {
		printFingerprint(c)
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		fatal(err)
		fatal(effitest.WriteDOT(f, c))
		fatal(f.Close())
		fmt.Printf("wrote %s\n", *dot)
	}
	if *out != "" {
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			fatal(err)
			defer f.Close()
			w = f
		}
		fatal(effitest.WriteNetlist(w, c))
		if *out != "-" {
			fmt.Printf("wrote %s\n", *out)
		}
	}
}

// printFingerprint prints the content hash that keys plan artifacts and
// the plan cache: two circuits with equal fingerprints are interchangeable
// inputs to the offline flow.
func printFingerprint(c *effitest.Circuit) {
	h, err := effitest.CircuitFingerprint(c)
	fatal(err)
	fmt.Printf("fingerprint %s\n", h)
}

func printStats(c *effitest.Circuit) {
	fmt.Printf("circuit %s\n", c.Name)
	fmt.Printf("  flip-flops:   %d (%d with tuning buffers)\n", c.NumFF, c.NumBuffers())
	fmt.Printf("  gates:        %d\n", c.NumGates())
	fmt.Printf("  timing paths: %d\n", c.NumPaths())
	fmt.Printf("  nominal clock: %.4f ns (buffer range τ = %.4f ns, %d steps)\n",
		c.TNominal, c.TNominal/8, c.Buf.Steps)
	var minMu, maxMu, sumSigma float64
	minMu = 1e18
	for i := range c.Paths {
		mu := c.Paths[i].Max.Mean
		if mu < minMu {
			minMu = mu
		}
		if mu > maxMu {
			maxMu = mu
		}
		sumSigma += c.Paths[i].Max.Sigma()
	}
	fmt.Printf("  path delay means: [%.4f, %.4f] ns, avg sigma %.4f ns\n",
		minMu, maxMu, sumSigma/float64(c.NumPaths()))
	fmt.Printf("  exclusive (ATPG-masked) pairs: %d\n", len(c.Exclusive))
	fmt.Printf("  scan chain: %d configuration bits\n", c.Devices.TotalBits())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "circgen:", err)
		os.Exit(1)
	}
}
